//! The NCS process environment: NCS_MPS over NCS_MTS (paper Figure 8).
//!
//! One [`NcsProc`] models one multithreaded NCS process. `init` (the
//! `NCS_init` of Figure 10) builds the MTS runtime and the **system
//! threads**; `t_create` adds user compute threads; `start` (`NCS_start`)
//! runs everything to completion.
//!
//! The paper's architecture is kept intact:
//!
//! * `NCS_send` / `NCS_recv` *"wake up the send and receive threads
//!   respectively and block the calling thread"* — only the calling
//!   user-level thread blocks, never the process;
//! * the **send thread** serializes outgoing transfers and spends its wire
//!   waits through an MTS-aware policy, so sibling compute threads run
//!   during transmission;
//! * the **receive thread** polls the transport (`messages_available`
//!   style) while siblings are runnable and parks in the kernel only when
//!   the process would otherwise idle;
//! * optional **flow control** (credit-based, Figure 5's per-application
//!   QOS choice) gates data sends in the send thread and returns credits
//!   from the receive thread.
//!
//! Message-class plumbing (signals, barriers, credits) shares the same two
//! system threads, which is exactly the modularity argument of Section 3.

use bytes::Bytes;
use ncs_mts::{Mts, MtsConfig, MtsCtx, MtsTid};
use ncs_net::stack::WaitPolicy;
use ncs_net::{Delivery, HostParams, Network, NodeId};
use ncs_sim::{
    ActorId, AnalysisConfig, Ctx, Dur, Sim, SimChannel, SimTime, SpanKind, TimerHandle,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Weak};

use crate::addr::{decode_tag, encode_tag, MsgClass, ThreadAddr};

/// Flow-control strategy (the `flow` argument of `NCS_init`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowControl {
    /// No NCS-level flow control: rely on the transport (what the paper's
    /// NCS_MTS/p4 measurements use — "the flow and error control provided
    /// by p4").
    None,
    /// Credit-based: a sender may have at most `window` unacknowledged data
    /// messages to any one destination; the receiver returns credits as it
    /// ingests.
    Credit {
        /// Per-destination message window.
        window: u32,
    },
}

/// Error-control strategy (the `error` argument of `NCS_init`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorControl {
    /// Trust the transport (TCP or ATM with AAL5 CRC).
    None,
    /// NCS-level checksum with retransmit-on-NACK, for transports modeled
    /// as corrupting (see [`crate::faulty::FaultyNet`]).
    ChecksumRetransmit,
}

/// Configuration for one NCS process (the arguments of `NCS_init` plus
/// scheduler and polling costs).
#[derive(Clone, Debug)]
pub struct NcsConfig {
    /// User-level scheduler parameters.
    pub mts: MtsConfig,
    /// Flow-control thread selection.
    pub flow: FlowControl,
    /// Error-control thread selection.
    pub error: ErrorControl,
    /// CPU cost of one receive-thread poll of the transport
    /// (`p4_messages_available`).
    pub poll_cost: Dur,
    /// Error control: adaptive retransmission-timeout parameters.
    pub rto: RtoConfig,
    /// Error control: give up (and raise a local delivery-failure
    /// exception, code [`EXC_DELIVERY_FAILED`]) after this many timeouts.
    /// Exhausting the budget also marks the destination **dead**: further
    /// sends to it fail fast with the same exception instead of hanging.
    pub max_retries: u32,
    /// Pipelined data path (the paper's Approach 2): number of I/O buffers
    /// the send thread may keep in flight per destination. A data message
    /// larger than [`NcsConfig::io_buffer_bytes`] is chunked into
    /// buffer-sized CS-PDUs; with checksum/retransmit error control active,
    /// at most this many chunks ride unacknowledged at once, and the send
    /// thread refills buffers as acknowledgments free them.
    pub io_buffers: u32,
    /// Size of one I/O buffer: the chunk granularity of the pipelined data
    /// path. Large messages are split at this boundary, which also keeps
    /// every CS-PDU under the AAL5 65 535-byte ceiling (a >64 KiB send used
    /// to die in the adaptation layer; now it is designed behavior).
    pub io_buffer_bytes: usize,
    /// Graceful degradation: at most this many retransmissions may sit in
    /// the send queue at once. A timer that fires while the queue is at the
    /// cap defers (backing the RTO off and counting `retx.backpressure`)
    /// instead of queueing — under sustained loss the retransmit backlog
    /// stays bounded rather than growing without limit.
    pub retx_queue_cap: usize,
    /// Receiver-side reclamation: a partial chunk-reassembly buffer that
    /// sees no new chunk for this long is dropped and its memory reclaimed
    /// (a crash-stopped sender must not leak receiver buffers forever).
    /// Must be set comfortably above the sender's give-up horizon
    /// (`max_retries` × max RTO): chunks are acknowledged individually, so
    /// reclaiming a transfer whose sender is still retrying would lose the
    /// already-acknowledged bytes silently. `None` (the default) disables
    /// reclamation.
    pub reassembly_timeout: Option<Dur>,
    /// Runtime analysis pass: deadlock / lost-wakeup detection in the
    /// scheduler plus protocol conservation checks (credits, sequence
    /// numbers, retry budgets) in the system threads. Off by default; an
    /// active config here is also installed into [`NcsConfig::mts`] (and
    /// the sim kernel) unless one was set there explicitly.
    pub analysis: AnalysisConfig,
}

/// Adaptive retransmission-timeout parameters (Jacobson's algorithm).
///
/// Error control keeps a per-destination smoothed RTT and variance from
/// acknowledged frames (`SRTT += (rtt − SRTT)/8`, `RTTVAR += (|rtt − SRTT|
/// − RTTVAR)/4`) and times out at `SRTT + 4·RTTVAR`, clamped to `[min,
/// max]`. Karn's rule: retransmitted frames never contribute samples, since
/// their ACKs are ambiguous. Each timeout doubles the timeout (exponential
/// backoff), still capped at `max`; a fresh sample resets the backoff.
#[derive(Clone, Copy, Debug)]
pub struct RtoConfig {
    /// Timeout used before the first RTT sample from a destination.
    pub initial: Dur,
    /// Floor for the computed timeout.
    pub min: Dur,
    /// Ceiling for the computed timeout, including backoff.
    pub max: Dur,
}

impl Default for RtoConfig {
    fn default() -> RtoConfig {
        RtoConfig {
            initial: Dur::from_millis(500),
            min: Dur::from_millis(10),
            max: Dur::from_secs(4),
        }
    }
}

impl RtoConfig {
    /// A config whose three parameters scale from one base timeout:
    /// `initial = base × 16` (= `max`), `min = base / 4`, `max = base ×
    /// 16`. Convenient for tests and experiments that used to set a single
    /// fixed timeout.
    ///
    /// The pre-sample timeout is deliberately the *ceiling*, not the base:
    /// until the first RTT measurement exists there is nothing to justify
    /// an aggressive timer, and an `initial` below the real path RTT
    /// guarantees a spurious retransmission of the very first frame (RFC
    /// 6298 makes the same call with its 1-second initial RTO). Jacobson's
    /// estimator pulls the timeout down as soon as the first ACK lands.
    pub fn from_base(base: Dur) -> RtoConfig {
        RtoConfig {
            initial: base.times(16),
            min: Dur::from_ps((base.as_ps() / 4).max(1)),
            max: base.times(16),
        }
    }
}

/// Exception code raised locally when error control exhausts its retries.
pub const EXC_DELIVERY_FAILED: u32 = 0xDEAD_5E0D;

impl Default for NcsConfig {
    fn default() -> NcsConfig {
        NcsConfig {
            mts: MtsConfig::default(),
            flow: FlowControl::None,
            error: ErrorControl::None,
            poll_cost: Dur::from_micros(10),
            rto: RtoConfig::default(),
            max_retries: 8,
            io_buffers: 4,
            io_buffer_bytes: 16 * 1024,
            retx_queue_cap: 256,
            reassembly_timeout: None,
            analysis: AnalysisConfig::off(),
        }
    }
}

/// A message delivered to an NCS thread.
#[derive(Clone, Debug)]
pub struct NcsMsg {
    /// Sending endpoint.
    pub from: ThreadAddr,
    /// Receiving thread (within this process).
    pub to_thread: u32,
    /// User tag.
    pub tag: u32,
    /// Payload.
    pub data: Bytes,
    class: MsgClass,
    /// Causal timeline id threaded from `NCS_send` to delivery (0 when the
    /// message is untracked: local delivery, control traffic).
    causal: u64,
}

impl NcsMsg {
    /// Causal timeline id assigned at `NCS_send` (0 = untracked). Look the
    /// per-layer stage marks up with [`ncs_sim::MetricsRegistry::timeline`].
    pub fn causal(&self) -> u64 {
        self.causal
    }
}

struct SendReq {
    from_thread: u32,
    to: ThreadAddr,
    class: MsgClass,
    user_tag: u32,
    data: Bytes,
    /// Transport tier index ([`NcsProc`] can carry several, e.g. NSM + HSM).
    tier: usize,
    /// Thread to unblock when the transfer completes (None for
    /// system-generated traffic like credits).
    waiter: Option<MtsTid>,
    /// Payload already carries the error-control header (a retransmission).
    prewrapped: bool,
    /// Error-control sequence number, set when the send thread wraps a
    /// first transmission — after the wire send it stamps `sent_at` on the
    /// matching [`UnackedMsg`] and arms the retransmission timer.
    seq: Option<u32>,
    /// Causal timeline id (0 = untracked). Chunks of one fragmented
    /// transfer all carry the logical message's id.
    causal: u64,
}

struct RecvReq {
    req_id: u64,
    to_thread: u32,
    class: MsgClass,
    from_proc: Option<usize>,
    from_thread: Option<u32>,
    user_tag: Option<u32>,
    waiter: MtsTid,
    slot: Arc<Mutex<Option<NcsMsg>>>,
}

struct MpsState {
    send_q: VecDeque<SendReq>,
    recv_reqs: Vec<RecvReq>,
    stash: VecDeque<NcsMsg>,
    /// Remaining send credits per destination (credit flow control).
    credits: BTreeMap<usize, u32>,
    /// Data messages ingested per source since the last credit grant.
    consumed: BTreeMap<usize, u32>,
    /// The send thread is parked waiting for credits to this destination.
    send_waiting_credit: Option<usize>,
    /// The send thread is parked waiting for an acknowledgment to free an
    /// I/O buffer toward this destination (pipelined chunked transfer).
    send_waiting_ack: Option<usize>,
    shutdown: bool,
    user_live: usize,
    /// Statistics: data messages sent / received.
    sent_msgs: u64,
    recv_msgs: u64,
    /// High-water mark of buffered-but-unconsumed messages (the stash).
    peak_stash: usize,
    /// Error control: next sequence number per destination (wraps at u32).
    next_seq: BTreeMap<usize, u32>,
    /// Error control: total sequence numbers ever allocated per
    /// destination — `next_seq` alone is ambiguous once it wraps.
    seqs_allocated: BTreeMap<usize, u64>,
    /// Chunked-transfer id allocator (pipelined data path).
    next_xfer_id: u32,
    /// Partially reassembled chunked transfers, keyed by (source process,
    /// transfer id).
    reassembly: BTreeMap<(usize, u32), FragAsm>,
    /// Error control: sent-but-unacknowledged wrapped payloads, keyed by
    /// (destination process, sequence number).
    unacked: BTreeMap<(usize, u32), UnackedMsg>,
    /// Statistics: retransmissions performed.
    retransmits: u64,
    /// Receive-request id allocator.
    next_req_id: u64,
    /// Error control: wrap-aware per-source record of delivered sequence
    /// numbers — a retransmitted frame whose ACK was lost must not be
    /// delivered twice, including across u32 wrap-around.
    seen_seqs: BTreeMap<usize, SeqWindow>,
    /// Error control: per-destination RTT estimator driving the adaptive
    /// retransmission timeout.
    rtt: BTreeMap<usize, RttEstimator>,
    /// Destinations whose retry budget was exhausted: sends to them fail
    /// fast with [`EXC_DELIVERY_FAILED`] instead of queueing.
    dead_peers: BTreeSet<usize>,
    /// Destinations behind a detected partition (every link on the route
    /// down): sends fail fast like `dead_peers`, but the mark is dropped —
    /// and the credit window re-seeded — the moment a fresh send finds the
    /// route up again (recovery after a flap window ends).
    partitioned_peers: BTreeSet<usize>,
    /// One loss-recovery timer per destination with frames in flight,
    /// timing the *oldest* unacknowledged frame (TCP-style). Restarted on
    /// partial acknowledgment, retracted when the last frame is acked.
    retx_timers: BTreeMap<usize, RetxTimer>,
    /// Monotonic allocator for [`RetxTimer::epoch`].
    timer_epoch: u64,
    /// Statistics: timeout-driven backoff doublings.
    backoff_events: u64,
    /// Statistics: clean RTT samples folded into an estimator.
    rtt_samples: u64,
    /// Statistics: frames abandoned after the retry budget.
    delivery_failures: u64,
    /// Statistics: duplicate frames re-ACKed but not delivered (the
    /// retransmitted-frame-whose-ACK-was-lost case).
    dup_suppressed: u64,
    /// Statistics: data messages that went out chunked through the
    /// I/O-buffer pool.
    fragmented_msgs: u64,
    /// Statistics: chunks transmitted (first transmissions only).
    fragments_sent: u64,
    /// Statistics: chunked transfers reassembled to completion.
    reassembled_msgs: u64,
    /// Statistics: acknowledgments that arrived for frames already
    /// retransmitted — each one means the (re)transmission may have been
    /// unnecessary (`retx.spurious`).
    spurious_retx: u64,
    /// Statistics: partition fail-fast events (`rto.partition_failfast`).
    partition_failfasts: u64,
    /// Statistics: retransmissions deferred by the bounded queue
    /// (`retx.backpressure`).
    retx_deferred: u64,
    /// Statistics: partial reassembly buffers reclaimed by timeout
    /// (`reasm.reclaimed`).
    reassembly_reclaimed: u64,
}

/// One armed per-destination loss-recovery timer.
struct RetxTimer {
    handle: TimerHandle,
    /// Guards against a stale firing racing a restart: a fired callback
    /// whose epoch no longer matches the armed timer's is ignored.
    epoch: u64,
}

/// Serial-number comparison (RFC 1982 style): is `a` strictly ahead of `b`
/// on the wrapping u32 circle?
fn seq_after(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000_0000
}

/// Wrap-aware duplicate detector for one source's delivered sequence
/// numbers. Tracks the high-water mark `hi` plus the exact set of seqs seen
/// within [`SeqWindow::DEPTH`] behind it; anything older than the window is
/// treated as a duplicate (a retransmission can only lag by the in-flight
/// window, which is orders of magnitude smaller than `DEPTH`).
#[derive(Default)]
struct SeqWindow {
    hi: u32,
    started: bool,
    recent: BTreeSet<u32>,
}

impl SeqWindow {
    /// How far behind the high-water mark a frame may arrive and still be
    /// judged on exact membership. Far larger than any credit or I/O-buffer
    /// window, far smaller than the wrap distance.
    const DEPTH: u32 = 4096;

    /// Records `seq` as delivered; returns `true` if it was already seen
    /// (or is too stale to be anything but a replay).
    fn observe(&mut self, seq: u32) -> bool {
        if !self.started {
            self.started = true;
            self.hi = seq;
            self.recent.insert(seq);
            return false;
        }
        if seq_after(seq, self.hi) {
            self.hi = seq;
            self.recent.insert(seq);
            let hi = self.hi;
            self.recent
                .retain(|&s| hi.wrapping_sub(s) < Self::DEPTH);
            return false;
        }
        if self.hi.wrapping_sub(seq) < Self::DEPTH {
            // Within the exact window (includes seq == hi).
            !self.recent.insert(seq)
        } else {
            // Older than anything we still track: a stale replay.
            true
        }
    }
}

/// One chunk-reassembly buffer (receive side of the pipelined data path).
struct FragAsm {
    total: u32,
    parts: Vec<Option<Bytes>>,
    have: u32,
    /// When the last chunk was accepted (drives timeout reclamation).
    last_progress: SimTime,
    /// The armed reclamation timer, if [`NcsConfig::reassembly_timeout`]
    /// is set; retracted when the transfer completes.
    reaper: Option<TimerHandle>,
}

/// Jacobson/Karn RTT estimation state for one destination.
#[derive(Clone, Copy, Debug, Default)]
struct RttEstimator {
    srtt_ps: u64,
    rttvar_ps: u64,
    has_sample: bool,
    /// Consecutive-timeout exponential-backoff exponent.
    backoff_exp: u32,
}

impl RttEstimator {
    /// Folds in one clean RTT sample (Jacobson's gains: 1/8 and 1/4) and
    /// resets the backoff.
    fn observe(&mut self, rtt: Dur) {
        let rtt_ps = rtt.as_ps();
        if self.has_sample {
            let err = self.srtt_ps.abs_diff(rtt_ps);
            self.rttvar_ps = (3 * self.rttvar_ps + err) / 4;
            self.srtt_ps = (7 * self.srtt_ps + rtt_ps) / 8;
        } else {
            self.srtt_ps = rtt_ps;
            self.rttvar_ps = rtt_ps / 2;
            self.has_sample = true;
        }
        self.backoff_exp = 0;
    }

    /// The current timeout: `SRTT + 4·RTTVAR` (or the configured initial
    /// value before any sample), clamped to `[min, max]`, then doubled per
    /// outstanding backoff step, capped at `max`.
    fn rto(&self, cfg: &RtoConfig) -> Dur {
        let base_ps = if self.has_sample {
            self.srtt_ps.saturating_add(4 * self.rttvar_ps)
        } else {
            cfg.initial.as_ps()
        };
        let clamped = base_ps.clamp(cfg.min.as_ps(), cfg.max.as_ps());
        let backed = clamped.saturating_mul(1u64 << self.backoff_exp.min(20));
        Dur::from_ps(backed.min(cfg.max.as_ps()))
    }
}

struct UnackedMsg {
    to: ThreadAddr,
    from_thread: u32,
    user_tag: u32,
    tier: usize,
    /// Wire class of the frame ([`MsgClass::Data`] or [`MsgClass::Frag`]):
    /// a retransmitted chunk must still be routed into reassembly.
    class: MsgClass,
    wrapped: Bytes,
    /// Timeout-driven retransmissions so far.
    retries: u32,
    /// When the frame first hit the wire (None until transmitted).
    sent_at: Option<SimTime>,
    /// The frame has been retransmitted at least once; Karn's rule bars
    /// its ACK from RTT sampling (the echo is ambiguous).
    retransmitted: bool,
}

struct UserThread {
    mts_tid: MtsTid,
    name: String,
}

struct ProcInner {
    id: usize,
    n: usize,
    sim: Sim,
    mts: Mts,
    cfg: NcsConfig,
    nets: Vec<Arc<dyn Network>>,
    merged: SimChannel<(usize, Delivery)>,
    state: Mutex<MpsState>,
    sys: Mutex<SysThreads>,
    users: Mutex<Vec<UserThread>>,
    /// Exception handler invoked (on the receive system thread) for
    /// incoming Exception-class messages.
    exception_handler: Mutex<Option<ExceptionHandler>>,
    /// Exceptions received before a handler was installed, or kept for
    /// polling-style consumers.
    pending_exceptions: Mutex<Vec<NcsException>>,
    /// Collective termination barrier shared by all processes of one
    /// [`crate::NcsWorld`]; `None` for a standalone process, which tears
    /// down at local quiescence as before.
    term: Option<Arc<TermBarrier>>,
}

/// Callback invoked for incoming exceptions.
pub type ExceptionHandler = Box<dyn Fn(&NcsException) + Send + 'static>;

/// Error-control statistics for one process (the FaultStats surface of the
/// reliability layer): aggregate counters plus the current per-destination
/// RTO trajectory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// Frames retransmitted (timeout- and NACK-driven).
    pub retransmits: u64,
    /// Timeout events that doubled a destination's RTO.
    pub backoff_events: u64,
    /// Clean RTT samples folded into an estimator (Karn-filtered).
    pub rtt_samples: u64,
    /// Frames abandoned after exhausting the retry budget.
    pub delivery_failures: u64,
    /// Duplicate frames re-ACKed but not delivered (retransmissions whose
    /// original already arrived — i.e. the ACK, not the data, was lost).
    pub duplicates_suppressed: u64,
    /// Acknowledgments that arrived for frames already retransmitted
    /// (each marks a possibly-unnecessary retransmission; the
    /// `retx.spurious` counter).
    pub spurious_retransmits: u64,
    /// Partition fail-fast events: a loss-recovery timer found every route
    /// to the peer down and failed its outstanding frames immediately
    /// (the `rto.partition_failfast` counter).
    pub partition_failfasts: u64,
    /// Retransmissions deferred by the bounded retransmit queue
    /// (the `retx.backpressure` counter).
    pub retx_deferred: u64,
    /// Partial reassembly buffers reclaimed by timeout
    /// (the `reasm.reclaimed` counter).
    pub reassembly_reclaimed: u64,
    /// Destinations declared dead (retry budget exhausted).
    pub dead_peers: Vec<usize>,
    /// Per-destination estimator snapshot, sorted by peer id.
    pub peers: Vec<PeerRto>,
}

/// One destination's RTT/RTO estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerRto {
    /// Destination process id.
    pub peer: usize,
    /// Smoothed round-trip time (zero before the first sample).
    pub srtt: Dur,
    /// Round-trip time variance estimate.
    pub rttvar: Dur,
    /// The timeout the next transmission to this peer would get.
    pub rto: Dur,
}

/// Delivers an exception to the local handler, or buffers it for later.
fn raise_local_exception(inner: &ProcInner, exc: NcsException) {
    let handled = {
        let h = inner.exception_handler.lock();
        if let Some(h) = h.as_ref() {
            h(&exc);
            true
        } else {
            false
        }
    };
    if !handled {
        inner.pending_exceptions.lock().push(exc);
    }
}

/// A cross-process exception notification (the paper's exception-handling
/// service class).
#[derive(Clone, Debug)]
pub struct NcsException {
    /// Raising endpoint.
    pub from: ThreadAddr,
    /// Application-defined code.
    pub code: u32,
    /// Free-form detail bytes.
    pub detail: Bytes,
}

#[derive(Default)]
struct SysThreads {
    send: Option<MtsTid>,
    recv: Option<MtsTid>,
}

/// Collective-termination barrier: `NCS_end` is a collective operation, so
/// a process that is locally quiescent (user threads done, every outgoing
/// frame acknowledged or abandoned) must not tear down its receive
/// machinery while a peer may still be retransmitting a frame whose
/// acknowledgment was lost on the wire — the sender would burn its whole
/// retry budget against a deaf host and spuriously declare it dead. Each
/// process instead signals quiescence here and lingers, re-ACKing
/// duplicates; only when the whole world is quiescent (no frame anywhere
/// is outstanding, so no retransmission can ever arrive again) are the
/// merged channels closed and the lingering system threads released. The
/// message-passing analogue of TCP's TIME-WAIT, with the world-wide
/// quiescence fact standing in for the 2·MSL clock.
pub(crate) struct TermBarrier {
    state: Mutex<TermState>,
}

struct TermState {
    /// Which processes have signalled local quiescence (idempotence: a
    /// process re-signals when a late duplicate re-empties its tables).
    ready: Vec<bool>,
    /// Processes still running.
    remaining: usize,
    /// Weak backrefs used to release every process once the last one
    /// arrives (weak: the barrier must not keep a dropped world alive).
    procs: Vec<Weak<ProcInner>>,
    complete: bool,
}

impl TermBarrier {
    pub(crate) fn new(n: usize) -> Arc<TermBarrier> {
        Arc::new(TermBarrier {
            state: Mutex::new(TermState {
                ready: vec![false; n],
                remaining: n,
                procs: Vec::with_capacity(n),
                complete: false,
            }),
        })
    }

    fn register(&self, inner: &Arc<ProcInner>) {
        self.state.lock().procs.push(Arc::downgrade(inner));
    }

    fn complete(&self) -> bool {
        self.state.lock().complete
    }

    /// Marks process `id` locally quiescent. The last arrival closes every
    /// process's merged channel (ending the receive threads' kernel waits)
    /// and wakes every send thread so it can observe completion and exit.
    fn proc_ready(&self, id: usize) {
        let released = {
            let mut st = self.state.lock();
            if st.complete || st.ready[id] {
                return;
            }
            st.ready[id] = true;
            st.remaining -= 1;
            if st.remaining > 0 {
                return;
            }
            st.complete = true;
            std::mem::take(&mut st.procs)
        };
        for w in released {
            let Some(p) = w.upgrade() else { continue };
            p.merged.close(&p.sim);
            let send = p.sys.lock().send;
            if let Some(tid) = send {
                p.mts.unblock(&p.sim, tid);
            }
        }
    }
}

/// The process has just become locally quiescent (shutdown requested and
/// no outstanding unacknowledged frame). Standalone processes tear down
/// immediately; collective ones linger at the termination barrier.
fn signal_quiescent(inner: &Arc<ProcInner>) {
    match &inner.term {
        None => inner.merged.close(&inner.sim),
        Some(t) => t.proc_ready(inner.id),
    }
}

/// Whether a system thread may exit: the process is locally quiescent
/// and, when part of a collective, the whole world is too.
fn may_teardown(inner: &ProcInner, st: &MpsState) -> bool {
    st.shutdown
        && st.unacked.is_empty()
        && inner.term.as_ref().is_none_or(|t| t.complete())
}

/// Handle to one NCS process.
#[derive(Clone)]
pub struct NcsProc {
    inner: Arc<ProcInner>,
}

/// MTS priority of the send system thread (highest: transfers start
/// promptly once the CPU is free).
pub const SEND_THREAD_PRIORITY: usize = 0;
/// MTS priority of the receive system thread (lowest: it polls only when
/// no user thread can run).
pub const RECV_THREAD_PRIORITY: usize = ncs_mts::PRIORITY_LEVELS - 1;

impl NcsProc {
    /// `NCS_init`: builds the MTS runtime and system threads for process
    /// `id` of `n`, attached to one or more transport tiers (`nets[0]` is
    /// the default tier; a second entry typically carries the other of
    /// NSM/HSM).
    pub fn init(
        sim: &Sim,
        id: usize,
        n: usize,
        nets: Vec<Arc<dyn Network>>,
        cfg: NcsConfig,
    ) -> NcsProc {
        Self::init_inner(sim, id, n, nets, cfg, None)
    }

    /// `NCS_init` for a process belonging to a collective computation:
    /// identical to [`NcsProc::init`], except the process lingers at the
    /// shared [`TermBarrier`] after local quiescence so late
    /// retransmissions from slower peers still find a live receiver.
    pub(crate) fn init_collective(
        sim: &Sim,
        id: usize,
        n: usize,
        nets: Vec<Arc<dyn Network>>,
        cfg: NcsConfig,
        term: &Arc<TermBarrier>,
    ) -> NcsProc {
        Self::init_inner(sim, id, n, nets, cfg, Some(Arc::clone(term)))
    }

    fn init_inner(
        sim: &Sim,
        id: usize,
        n: usize,
        nets: Vec<Arc<dyn Network>>,
        cfg: NcsConfig,
        term: Option<Arc<TermBarrier>>,
    ) -> NcsProc {
        assert!(!nets.is_empty(), "need at least one transport tier");
        for net in &nets {
            assert!(n <= net.nodes(), "more processes than testbed nodes");
        }
        assert!(id < n);
        let mut mts_cfg = cfg.mts.clone();
        if cfg.analysis.active() && !mts_cfg.analysis.active() {
            mts_cfg.analysis = cfg.analysis.clone();
        }
        let mts = Mts::new(sim, format!("proc{id}"), mts_cfg);
        let merged = SimChannel::unbounded(format!("ncs-merged-{id}"));
        let inner = Arc::new(ProcInner {
            id,
            n,
            sim: sim.clone(),
            mts,
            cfg,
            nets,
            merged,
            state: Mutex::new(MpsState {
                send_q: VecDeque::new(),
                recv_reqs: Vec::new(),
                stash: VecDeque::new(),
                credits: BTreeMap::new(),
                consumed: BTreeMap::new(),
                send_waiting_credit: None,
                send_waiting_ack: None,
                shutdown: false,
                user_live: 0,
                sent_msgs: 0,
                recv_msgs: 0,
                peak_stash: 0,
                next_seq: BTreeMap::new(),
                seqs_allocated: BTreeMap::new(),
                next_xfer_id: 0,
                reassembly: BTreeMap::new(),
                unacked: BTreeMap::new(),
                retransmits: 0,
                next_req_id: 0,
                seen_seqs: BTreeMap::new(),
                rtt: BTreeMap::new(),
                dead_peers: BTreeSet::new(),
                partitioned_peers: BTreeSet::new(),
                retx_timers: BTreeMap::new(),
                timer_epoch: 0,
                backoff_events: 0,
                rtt_samples: 0,
                delivery_failures: 0,
                dup_suppressed: 0,
                fragmented_msgs: 0,
                fragments_sent: 0,
                reassembled_msgs: 0,
                spurious_retx: 0,
                partition_failfasts: 0,
                retx_deferred: 0,
                reassembly_reclaimed: 0,
            }),
            sys: Mutex::new(SysThreads::default()),
            users: Mutex::new(Vec::new()),
            exception_handler: Mutex::new(None),
            pending_exceptions: Mutex::new(Vec::new()),
            term,
        });
        if let Some(t) = &inner.term {
            t.register(&inner);
        }
        let proc_ = NcsProc { inner };
        proc_.spawn_forwarders();
        proc_.spawn_system_threads();
        proc_.seed_credits();
        proc_
    }

    /// Forwarder daemons merge all transport inboxes into one channel so a
    /// single receive thread can wait on "any tier" (pure plumbing: no
    /// virtual time cost; the real pickup cost is charged by the receive
    /// thread).
    fn spawn_forwarders(&self) {
        for (tier, net) in self.inner.nets.iter().enumerate() {
            let inbox = net.inbox(NodeId(self.inner.id as u32));
            let merged = self.inner.merged.clone();
            self.inner
                .sim
                .spawn_daemon(format!("proc{}-fwd{}", self.inner.id, tier), move |ctx| {
                    while let Ok(d) = inbox.recv(ctx) {
                        if merged.offer(ctx.sim(), (tier, d)).is_err() {
                            break; // process shut down
                        }
                    }
                });
        }
    }

    fn spawn_system_threads(&self) {
        let send_inner = Arc::clone(&self.inner);
        let send_tid = self
            .inner
            .mts
            .spawn("ncs-send", SEND_THREAD_PRIORITY, move |m| {
                send_thread_body(&send_inner, m);
            });
        let recv_inner = Arc::clone(&self.inner);
        let recv_tid = self
            .inner
            .mts
            .spawn("ncs-recv", RECV_THREAD_PRIORITY, move |m| {
                recv_thread_body(&recv_inner, m);
            });
        let mut sys = self.inner.sys.lock();
        sys.send = Some(send_tid);
        sys.recv = Some(recv_tid);
    }

    fn seed_credits(&self) {
        if let FlowControl::Credit { window } = self.inner.cfg.flow {
            let mut st = self.inner.state.lock();
            for p in 0..self.inner.n {
                if p != self.inner.id {
                    st.credits.insert(p, window);
                }
            }
        }
    }

    /// `NCS_t_create`: creates a user compute thread. Returns its logical
    /// thread id (0 for the first created thread, matching the paper's
    /// THREAD1/THREAD2 numbering shifted to 0-based).
    pub fn t_create(
        &self,
        name: impl Into<String>,
        priority: usize,
        body: impl FnOnce(&NcsCtx) + Send + 'static,
    ) -> u32 {
        assert!(
            priority > SEND_THREAD_PRIORITY && priority < RECV_THREAD_PRIORITY,
            "user priorities must lie strictly between the system threads'"
        );
        let name = name.into();
        let logical = {
            let users = self.inner.users.lock();
            users.len() as u32
        };
        self.inner.state.lock().user_live += 1;
        let proc_ = self.clone();
        let mts_tid = self.inner.mts.spawn(name.clone(), priority, move |m| {
            let nctx = NcsCtx {
                proc: proc_.clone(),
                mctx: m,
                thread: logical,
                actor: m.mts().actor_id(m.tid()),
            };
            body(&nctx);
            proc_.user_thread_done();
        });
        self.inner.users.lock().push(UserThread { mts_tid, name });
        logical
    }

    /// `NCS_start`: runs threads to completion. Blocks the calling green
    /// thread (the process "main") until all user threads exit and the
    /// system threads wind down.
    pub fn start(&self, ctx: &Ctx) {
        {
            // A process with no user threads shuts down immediately.
            let st = self.inner.state.lock();
            if st.user_live == 0 {
                drop(st);
                self.begin_shutdown();
            }
        }
        self.inner.mts.start(ctx);
    }

    fn user_thread_done(&self) {
        let last = {
            let mut st = self.inner.state.lock();
            st.user_live -= 1;
            st.user_live == 0
        };
        if last {
            self.begin_shutdown();
        }
    }

    fn begin_shutdown(&self) {
        let can_close = {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
            st.unacked.is_empty()
        };
        // Wake the send thread so it can drain and exit; signal quiescence
        // so the receive thread's kernel wait can end. With error control
        // active, the signal waits for the last acknowledgment (see
        // `ingest`), since retransmissions may still be needed; in a
        // collective world the process additionally lingers at the
        // termination barrier until *every* peer is quiescent (TIME-WAIT).
        let send = self.inner.sys.lock().send;
        if let Some(tid) = send {
            self.inner.mts.unblock(&self.inner.sim, tid);
        }
        if can_close {
            signal_quiescent(&self.inner);
        }
    }

    /// This process's id.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Number of processes in the computation.
    pub fn num_procs(&self) -> usize {
        self.inner.n
    }

    /// The host model this process runs on (tier 0).
    pub fn host(&self) -> &HostParams {
        self.inner.nets[0].host(NodeId(self.inner.id as u32))
    }

    /// The MTS runtime (for stats and advanced use).
    pub fn mts(&self) -> &Mts {
        &self.inner.mts
    }

    /// Data messages sent and received so far.
    pub fn msg_counts(&self) -> (u64, u64) {
        let st = self.inner.state.lock();
        (st.sent_msgs, st.recv_msgs)
    }

    /// Error-control retransmissions performed so far.
    pub fn retransmits(&self) -> u64 {
        self.inner.state.lock().retransmits
    }

    /// Full error-control statistics: retransmit/backoff/sample counters
    /// and the per-destination SRTT/RTTVAR/RTO trajectory.
    pub fn error_stats(&self) -> ErrorStats {
        let st = self.inner.state.lock();
        let mut dead: Vec<usize> = st.dead_peers.iter().copied().collect();
        dead.sort_unstable();
        let mut peers: Vec<PeerRto> = st
            .rtt
            .iter()
            .map(|(&peer, e)| PeerRto {
                peer,
                srtt: Dur::from_ps(e.srtt_ps),
                rttvar: Dur::from_ps(e.rttvar_ps),
                rto: e.rto(&self.inner.cfg.rto),
            })
            .collect();
        peers.sort_unstable_by_key(|p| p.peer);
        ErrorStats {
            retransmits: st.retransmits,
            backoff_events: st.backoff_events,
            rtt_samples: st.rtt_samples,
            delivery_failures: st.delivery_failures,
            duplicates_suppressed: st.dup_suppressed,
            spurious_retransmits: st.spurious_retx,
            partition_failfasts: st.partition_failfasts,
            retx_deferred: st.retx_deferred,
            reassembly_reclaimed: st.reassembly_reclaimed,
            dead_peers: dead,
            peers,
        }
    }

    /// Whether error control has declared `peer` dead (sends fail fast).
    pub fn is_peer_dead(&self, peer: usize) -> bool {
        self.inner.state.lock().dead_peers.contains(&peer)
    }

    /// Whether error control currently holds `peer` behind a detected
    /// partition (fail-fast, but recoverable: the mark drops as soon as a
    /// fresh send finds the route up again).
    pub fn is_peer_partitioned(&self, peer: usize) -> bool {
        self.inner.state.lock().partitioned_peers.contains(&peer)
    }

    /// Partial chunk-reassembly buffers currently held (receive side of
    /// the pipelined data path) — zero after a clean run, and zero again
    /// after timeout reclamation of a crash-stopped sender's leftovers.
    pub fn reassembly_backlog(&self) -> usize {
        self.inner.state.lock().reassembly.len()
    }

    /// High-water mark of messages buffered in this process awaiting a
    /// matching receive (the flow-control ablation's figure of merit).
    pub fn peak_buffered(&self) -> usize {
        self.inner.state.lock().peak_stash
    }

    /// Pipelined-data-path counters: `(messages chunked, chunks sent,
    /// messages reassembled)` — sender-side fragmentation and receiver-side
    /// completion statistics for the I/O-buffer pool.
    pub fn pipeline_stats(&self) -> (u64, u64, u64) {
        let st = self.inner.state.lock();
        (st.fragmented_msgs, st.fragments_sent, st.reassembled_msgs)
    }

    /// Test hook: seeds the error-control sequence counter toward `dst`,
    /// so wrap-around behavior can be exercised without 2^32 sends.
    #[doc(hidden)]
    pub fn debug_seed_next_seq(&self, dst: usize, seq: u32) {
        self.inner.state.lock().next_seq.insert(dst, seq);
    }

    /// Looks up the MTS tid of logical user thread `t`.
    fn user_mts_tid(&self, t: u32) -> MtsTid {
        self.inner.users.lock()[t as usize].mts_tid
    }

    /// Name of logical user thread `t`.
    pub fn thread_name(&self, t: u32) -> String {
        self.inner.users.lock()[t as usize].name.clone()
    }

    /// Installs the exception handler (the paper's exception-handling
    /// service). Runs on the receive system thread for each incoming
    /// exception; previously buffered exceptions are delivered immediately.
    pub fn on_exception(&self, handler: impl Fn(&NcsException) + Send + 'static) {
        let backlog = {
            let mut h = self.inner.exception_handler.lock();
            *h = Some(Box::new(handler));
            std::mem::take(&mut *self.inner.pending_exceptions.lock())
        };
        if let Some(h) = self.inner.exception_handler.lock().as_ref() {
            for e in &backlog {
                h(e);
            }
        }
    }

    /// Exceptions received so far with no handler installed.
    pub fn pending_exceptions(&self) -> Vec<NcsException> {
        self.inner.pending_exceptions.lock().clone()
    }

    /// Delivers a same-process message directly (threads share the address
    /// space, so "the B matrix is sent to a particular node only once").
    fn deliver_local(&self, msg: NcsMsg) {
        if msg.class == MsgClass::Exception {
            raise_local_exception(
                &self.inner,
                NcsException {
                    from: msg.from,
                    code: msg.tag,
                    detail: msg.data,
                },
            );
            return;
        }
        let mut st = self.inner.state.lock();
        st.stash.push_back(msg);
        st.peak_stash = st.peak_stash.max(st.stash.len());
        match_requests(&self.inner, &mut st);
    }
}

/// Per-thread API handle (what the paper's primitives take implicitly from
/// the calling thread's identity).
pub struct NcsCtx<'a> {
    proc: NcsProc,
    mctx: &'a MtsCtx<'a>,
    thread: u32,
    actor: ActorId,
}

/// MTS-aware wait policy: wire waits block only the calling (system)
/// thread, letting sibling compute threads use the CPU — the heart of the
/// paper's computation/communication overlap.
struct MtsWait<'a, 'b>(&'a MtsCtx<'b>);

impl WaitPolicy for MtsWait<'_, '_> {
    fn wait(&self, _ctx: &Ctx, d: Dur) {
        self.0.sleep(d);
    }
}

impl NcsCtx<'_> {
    /// This thread's address.
    pub fn my_addr(&self) -> ThreadAddr {
        ThreadAddr::new(self.proc.id(), self.thread)
    }

    /// This thread's logical id.
    pub fn thread_id(&self) -> u32 {
        self.thread
    }

    /// The owning process.
    pub fn proc(&self) -> &NcsProc {
        &self.proc
    }

    /// The MTS thread context.
    pub fn mctx(&self) -> &MtsCtx<'_> {
        self.mctx
    }

    /// Raw simulation context.
    pub fn ctx(&self) -> &Ctx {
        self.mctx.ctx()
    }

    /// Charges `cycles` of computation to this thread (CPU held) and
    /// records a compute span for the timeline figures.
    pub fn compute(&self, cycles: u64, label: &'static str) {
        let t0 = self.ctx().now();
        self.proc.host().compute(self.ctx(), cycles);
        let t1 = self.ctx().now();
        self.proc.inner.sim.with_tracer(|tr| {
            tr.span_on(self.actor, SpanKind::Compute, label, t0, t1);
        });
    }

    /// `NCS_send`: transfers `data` to thread `to.thread` of process
    /// `to.proc`. Blocks only this thread; the send system thread performs
    /// the transfer.
    pub fn send(&self, to: ThreadAddr, tag: u32, data: Bytes) {
        self.send_class(MsgClass::Data, to, tag, data, 0);
    }

    /// `NCS_send` on an explicit transport tier (NSM vs HSM selection).
    pub fn send_via(&self, tier: usize, to: ThreadAddr, tag: u32, data: Bytes) {
        self.send_class(MsgClass::Data, to, tag, data, tier);
    }

    fn send_class(&self, class: MsgClass, to: ThreadAddr, tag: u32, data: Bytes, tier: usize) {
        assert!(to.proc < self.proc.num_procs(), "destination out of range");
        assert!(tier < self.proc.inner.nets.len(), "no such transport tier");
        let t0 = self.ctx().now();
        // Remote data messages get a causal timeline: every layer stamps
        // its hand-off so the end-to-end latency decomposes per stage.
        let causal = if class == MsgClass::Data && to.proc != self.proc.id() {
            self.proc.inner.sim.with_metrics(|mm| {
                let c = mm.next_causal();
                mm.mark(c, "enqueued", t0);
                c
            })
        } else {
            0
        };
        if to.proc == self.proc.id() {
            // Local delivery: one copy at memory speed, no wire.
            let h = self.proc.host();
            let words = data.len().div_ceil(4) as u64;
            self.ctx().sleep(h.bus_access.times(words.max(1)));
            if class == MsgClass::Data {
                self.proc.inner.state.lock().sent_msgs += 1;
            }
            self.proc.deliver_local(NcsMsg {
                from: self.my_addr(),
                to_thread: to.thread,
                tag,
                data,
                class,
                causal: 0,
            });
        } else if self.proc.inner.state.lock().dead_peers.contains(&to.proc) {
            // Error control exhausted its retries on this destination:
            // fail fast with the delivery-failure exception instead of
            // queueing a transfer that can never complete.
            raise_local_exception(
                &self.proc.inner,
                NcsException {
                    from: to,
                    code: EXC_DELIVERY_FAILED,
                    detail: Bytes::from(tag.to_le_bytes().to_vec()),
                },
            );
        } else {
            let send_tid = {
                let mut st = self.proc.inner.state.lock();
                st.send_q.push_back(SendReq {
                    from_thread: self.thread,
                    to,
                    class,
                    user_tag: tag,
                    data,
                    tier,
                    waiter: Some(self.mctx.tid()),
                    prewrapped: false,
                    seq: None,
                    causal,
                });
                self.proc
                    .inner
                    .sys
                    .lock()
                    .send
                    .expect("send thread missing")
            };
            self.mctx.unblock(send_tid);
            self.mctx.block_on(send_tid);
        }
        let t1 = self.ctx().now();
        self.proc.inner.sim.with_tracer(|tr| {
            tr.span_full(self.actor, SpanKind::Comm, "send", t0, t1, None, causal);
        });
    }

    /// `NCS_recv`: receives a data message addressed to this thread,
    /// optionally filtered by source process, source thread, and tag
    /// (`None` = the paper's `-1` wildcard). Blocks only this thread.
    pub fn recv(
        &self,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
    ) -> NcsMsg {
        self.recv_class(MsgClass::Data, from_proc, from_thread, tag)
    }

    /// Receives any data message for this thread.
    pub fn recv_any(&self) -> NcsMsg {
        self.recv(None, None, None)
    }

    /// Non-blocking check whether a matching data message is already
    /// buffered for this thread (the NCS-level `messages_available`).
    pub fn probe(
        &self,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
    ) -> bool {
        let st = self.proc.inner.state.lock();
        st.stash.iter().any(|m| {
            m.class == MsgClass::Data
                && m.to_thread == self.thread
                && from_proc.is_none_or(|p| p == m.from.proc)
                && from_thread.is_none_or(|t| t == m.from.thread)
                && tag.is_none_or(|t| t == m.tag)
        })
    }

    /// Like [`NcsCtx::recv`] but gives up after `timeout`, returning `None`
    /// (for soft-deadline consumers such as the VOD player of Figure 5).
    pub fn recv_timeout(
        &self,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
        timeout: Dur,
    ) -> Option<NcsMsg> {
        // Fast path.
        {
            let mut st = self.proc.inner.state.lock();
            if let Some(m) = take_from_stash(
                &mut st.stash,
                self.thread,
                MsgClass::Data,
                from_proc,
                from_thread,
                tag,
            ) {
                st.recv_msgs += 1;
                drop(st);
                observe_delivery(&self.proc.inner, m.causal, self.ctx().now());
                note_app_delivery(&self.proc.inner, &m);
                return Some(m);
            }
        }
        let slot = Arc::new(Mutex::new(None));
        let timed_out = Arc::new(Mutex::new(false));
        let req_id = {
            let mut st = self.proc.inner.state.lock();
            let req_id = st.next_req_id;
            st.next_req_id += 1;
            st.recv_reqs.push(RecvReq {
                req_id,
                to_thread: self.thread,
                class: MsgClass::Data,
                from_proc,
                from_thread,
                user_tag: tag,
                waiter: self.mctx.tid(),
                slot: Arc::clone(&slot),
            });
            req_id
        };
        // Arm the expiry: if the request is still queued when the timer
        // fires, cancel it and wake the waiter empty-handed. The handle
        // lets a satisfied receive retract the timer from the kernel queue.
        let inner = Arc::clone(&self.proc.inner);
        let waiter = self.mctx.tid();
        let timed_out2 = Arc::clone(&timed_out);
        let sim = self.ctx().sim();
        let timer = sim.schedule_cancellable(sim.now() + timeout, move |sim| {
            let fire = {
                let mut st = inner.state.lock();
                match st.recv_reqs.iter().position(|r| r.req_id == req_id) {
                    Some(pos) => {
                        st.recv_reqs.remove(pos);
                        true
                    }
                    None => false, // already satisfied
                }
            };
            if fire {
                *timed_out2.lock() = true;
                inner.mts.unblock(sim, waiter);
            }
        });
        loop {
            self.mctx.block();
            if let Some(m) = slot.lock().take() {
                // Satisfied before expiry: retract the timer.
                self.ctx().sim().cancel_scheduled(timer);
                self.proc.inner.state.lock().recv_msgs += 1;
                observe_delivery(&self.proc.inner, m.causal, self.ctx().now());
                note_app_delivery(&self.proc.inner, &m);
                return Some(m);
            }
            if *timed_out.lock() {
                return None;
            }
            // Spurious unblock: wait again.
        }
    }

    fn recv_class(
        &self,
        class: MsgClass,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
    ) -> NcsMsg {
        let t0 = self.ctx().now();
        let slot = Arc::new(Mutex::new(None));
        let hit = {
            let mut st = self.proc.inner.state.lock();
            take_from_stash(
                &mut st.stash,
                self.thread,
                class,
                from_proc,
                from_thread,
                tag,
            )
        };
        let msg = match hit {
            Some(m) => m,
            None => {
                {
                    let mut st = self.proc.inner.state.lock();
                    let req_id = st.next_req_id;
                    st.next_req_id += 1;
                    st.recv_reqs.push(RecvReq {
                        req_id,
                        to_thread: self.thread,
                        class,
                        from_proc,
                        from_thread,
                        user_tag: tag,
                        waiter: self.mctx.tid(),
                        slot: Arc::clone(&slot),
                    });
                }
                // Record the wait edge toward the receive system thread
                // (the usual waker) for deadlock analysis. Copy the tid out
                // first: the waker runs on the receive system thread and
                // takes `sys`, so the guard must not be held across the park.
                let recv = self.proc.inner.sys.lock().recv;
                match recv {
                    Some(t) if t != self.mctx.tid() => self.mctx.block_on(t),
                    _ => self.mctx.block(),
                }
                slot.lock().take().expect("recv unblocked without message")
            }
        };
        if class == MsgClass::Data {
            self.proc.inner.state.lock().recv_msgs += 1;
        }
        let t1 = self.ctx().now();
        observe_delivery(&self.proc.inner, msg.causal, t1);
        note_app_delivery(&self.proc.inner, &msg);
        self.proc.inner.sim.with_tracer(|tr| {
            tr.span_full(self.actor, SpanKind::Comm, "recv", t0, t1, None, msg.causal);
        });
        msg
    }

    /// `NCS_bcast`: sends `data` to every endpoint in `list`.
    pub fn bcast(&self, list: &[ThreadAddr], tag: u32, data: Bytes) {
        for &to in list {
            self.send(to, tag, data.clone());
        }
    }

    /// Sends a zero-byte synchronization signal to `to`.
    pub fn signal(&self, to: ThreadAddr) {
        self.send_class(MsgClass::Signal, to, 0, Bytes::new(), 0);
    }

    /// Raises an exception at process `to_proc` (the paper's exception
    /// handling service): delivered asynchronously to the remote process's
    /// handler rather than to a receiving thread.
    pub fn raise(&self, to_proc: usize, code: u32, detail: Bytes) {
        self.send_class(
            MsgClass::Exception,
            ThreadAddr::new(to_proc, 0),
            code,
            detail,
            0,
        );
    }

    /// Waits for a signal (optionally from a specific endpoint).
    pub fn wait_signal(&self, from: Option<ThreadAddr>) {
        let (fp, ft) = match from {
            Some(a) => (Some(a.proc), Some(a.thread)),
            None => (None, None),
        };
        self.recv_class(MsgClass::Signal, fp, ft, None);
    }

    /// Barrier among the listed endpoints; `parties[0]` acts as root.
    /// Every listed thread must call this with the same list.
    pub fn barrier(&self, parties: &[ThreadAddr]) {
        if parties.len() <= 1 {
            return;
        }
        let root = parties[0];
        let me = self.my_addr();
        debug_assert!(parties.contains(&me), "caller must be a party");
        if me == root {
            for _ in 1..parties.len() {
                self.recv_class(MsgClass::BarArrive, None, None, None);
            }
            for &p in &parties[1..] {
                self.send_class(MsgClass::BarGo, p, 0, Bytes::new(), 0);
            }
        } else {
            self.send_class(MsgClass::BarArrive, root, 0, Bytes::new(), 0);
            self.recv_class(MsgClass::BarGo, Some(root.proc), Some(root.thread), None);
        }
    }

    /// `NCS_block` on this thread (paper API; used with [`NcsCtx::unblock`]
    /// for intra-process synchronization as in the JPEG host code).
    pub fn block(&self) {
        self.mctx.block();
    }

    /// `NCS_unblock`: unblocks logical user thread `t` of this process.
    pub fn unblock(&self, t: u32) {
        let tid = self.proc.user_mts_tid(t);
        self.mctx.unblock(tid);
    }

    /// Yields the CPU to sibling threads.
    pub fn yield_now(&self) {
        self.mctx.yield_now();
    }
}

fn take_from_stash(
    stash: &mut VecDeque<NcsMsg>,
    to_thread: u32,
    class: MsgClass,
    from_proc: Option<usize>,
    from_thread: Option<u32>,
    tag: Option<u32>,
) -> Option<NcsMsg> {
    let pos = stash.iter().position(|m| {
        m.class == class
            && m.to_thread == to_thread
            && from_proc.is_none_or(|p| p == m.from.proc)
            && from_thread.is_none_or(|t| t == m.from.thread)
            && tag.is_none_or(|t| t == m.tag)
    })?;
    stash.remove(pos)
}

/// Matches queued receive requests against stashed messages, unblocking
/// satisfied waiters. Must be called with the state lock held.
fn match_requests(inner: &ProcInner, st: &mut MpsState) {
    let mut i = 0;
    while i < st.recv_reqs.len() {
        let req = &st.recv_reqs[i];
        let hit = take_from_stash(
            &mut st.stash,
            req.to_thread,
            req.class,
            req.from_proc,
            req.from_thread,
            req.user_tag,
        );
        // Borrow gymnastics: `take_from_stash` needs &mut stash while req
        // borrows recv_reqs — split via index re-borrowing.
        match hit {
            Some(msg) => {
                let req = st.recv_reqs.remove(i);
                *req.slot.lock() = Some(msg);
                inner.mts.unblock(&inner.sim, req.waiter);
            }
            None => i += 1,
        }
    }
}

/// Wraps a payload with the error-control header: `[seq u32][crc u32]data`
/// where the CRC covers the sequence number and the data.
fn wrap_checked(seq: u32, data: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(8 + data.len());
    v.extend_from_slice(&seq.to_le_bytes());
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(data);
    v.extend_from_slice(&ncs_net::crc::crc32_aal5(&crc_input).to_le_bytes());
    v.extend_from_slice(data);
    Bytes::from(v)
}

/// Parses and verifies a checked payload. Returns `(seq, Ok(data))` on a
/// clean frame, `(seq, Err(()))` on corruption.
#[allow(clippy::result_unit_err)]
fn unwrap_checked(b: &Bytes) -> (u32, Result<Bytes, ()>) {
    if b.len() < 8 {
        return (0, Err(()));
    }
    let seq = u32::from_le_bytes(b[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(b[4..8].try_into().unwrap());
    let mut crc_input = Vec::with_capacity(b.len() - 4);
    crc_input.extend_from_slice(&b[..4]);
    crc_input.extend_from_slice(&b[8..]);
    if ncs_net::crc::crc32_aal5(&crc_input) == crc {
        (seq, Ok(b.slice(8..)))
    } else {
        (seq, Err(()))
    }
}

/// The timeout the next (re)transmission to `dst` should get, from its
/// estimator state (or the configured initial value before any sample).
fn current_rto(st: &MpsState, cfg: &RtoConfig, dst: usize) -> Dur {
    st.rtt.get(&dst).copied().unwrap_or_default().rto(cfg)
}

/// (Re)arms the per-destination loss-recovery timer at `now + RTO(dst)`,
/// replacing any armed one. One timer per destination, TCP-style, timing
/// the **oldest** frame on the wire: restarted on every partial
/// acknowledgment (so under deep pipelining a later frame's queueing delay
/// behind its siblings never counts against its own timeout) and after
/// each timer-driven retransmission (with the backed-off RTO).
fn restart_retx_timer(inner: &Arc<ProcInner>, dst: usize) {
    let (timeout, epoch) = {
        let mut st = inner.state.lock();
        st.timer_epoch += 1;
        (current_rto(&st, &inner.cfg.rto, dst), st.timer_epoch)
    };
    let sim = inner.sim.clone();
    let cb_inner = Arc::clone(inner);
    let handle = sim.schedule_cancellable(sim.now() + timeout, move |sim| {
        retx_fire(&cb_inner, sim, dst, epoch);
    });
    let mut st = inner.state.lock();
    if let Some(old) = st.retx_timers.insert(dst, RetxTimer { handle, epoch }) {
        // Replaced: retract the superseded timer from the kernel queue
        // rather than letting it fire as a stale no-op event.
        inner.sim.cancel_scheduled(old.handle);
    }
}

/// Arms the destination's loss-recovery timer only if none is armed —
/// the path for first transmissions: frame N+1 joining an already-timed
/// pipeline must not push frame N's deadline out.
fn ensure_retx_timer(inner: &Arc<ProcInner>, dst: usize) {
    {
        let st = inner.state.lock();
        let outstanding = st.unacked.keys().any(|&(d, _)| d == dst);
        if st.retx_timers.contains_key(&dst) || !outstanding {
            return;
        }
    }
    restart_retx_timer(inner, dst);
}

/// Retracts the destination's loss-recovery timer (last frame acked, or
/// outstanding frames purged).
fn cancel_retx_timer(inner: &ProcInner, st: &mut MpsState, dst: usize) {
    if let Some(t) = st.retx_timers.remove(&dst) {
        inner.sim.cancel_scheduled(t.handle);
    }
}

/// Purges every outstanding frame toward `dst`, returning the
/// `(endpoint, tag)` pairs to raise [`EXC_DELIVERY_FAILED`] for, and
/// unwedges a send thread parked on the peer's credits or I/O buffers.
fn purge_unacked(inner: &ProcInner, st: &mut MpsState, dst: usize) -> Vec<(ThreadAddr, u32)> {
    let keys: Vec<(usize, u32)> = st
        .unacked
        .keys()
        .filter(|&&(d, _)| d == dst)
        .copied()
        .collect();
    let mut failed = Vec::with_capacity(keys.len());
    for k in keys {
        let u = st.unacked.remove(&k).expect("key just listed");
        failed.push((u.to, u.user_tag));
    }
    st.delivery_failures += failed.len() as u64;
    cancel_retx_timer(inner, st, dst);
    if st.send_waiting_credit == Some(dst) {
        st.send_waiting_credit = None;
    }
    if st.send_waiting_ack == Some(dst) {
        st.send_waiting_ack = None;
    }
    failed
}

/// Expiry of a destination's loss-recovery timer: the oldest frame on the
/// wire toward `dst` has gone a full RTO unacknowledged. Retransmit it
/// (with exponential RTO backoff), unless the retransmit queue is at its
/// cap (defer, with backpressure accounting), every route to the peer is
/// down (fail all outstanding frames fast — a partition should cost one
/// RTO, not a `max_retries` backoff crawl), or the retry budget is spent
/// (declare the peer dead) — a send to a crashed node must not hang the
/// scheduler.
fn retx_fire(inner: &Arc<ProcInner>, sim: &Sim, dst: usize, epoch: u64) {
    enum Action {
        Done,
        Retry,
        Deferred,
        /// `true`: the peer is permanently dead (budget exhausted);
        /// `false`: partition fail-fast, recoverable when the route heals.
        Failed(Vec<(ThreadAddr, u32)>, bool),
    }
    let action = {
        let mut st = inner.state.lock();
        // Superseded by a restart (a partial ack landed after this firing
        // was already dequeued): the newer timer owns loss recovery now.
        if st.retx_timers.get(&dst).map(|t| t.epoch) != Some(epoch) {
            return;
        }
        st.retx_timers.remove(&dst);
        // The timer times the oldest frame actually transmitted. Frames
        // still queued locally (`sent_at == None`) have not started their
        // clock — a queued frame never inherits a stale send-time.
        let oldest = st
            .unacked
            .iter()
            .filter(|((d, _), u)| *d == dst && u.sent_at.is_some())
            .min_by_key(|(_, u)| u.sent_at)
            .map(|(&(_, s), u)| (s, u.tier, u.retries));
        match oldest {
            None => Action::Done, // everything acknowledged meanwhile
            Some((seq, tier, retries)) => {
                let unreachable = inner.nets[tier].peer_unreachable(
                    NodeId(inner.id as u32),
                    NodeId(dst as u32),
                    sim.now(),
                );
                if unreachable {
                    // Partition: every route to the peer is inside an
                    // outage window right now; retrying into it burns the
                    // budget for nothing. Fail the outstanding frames with
                    // typed exceptions, but do NOT declare the peer dead —
                    // when the outage ends, fresh sends recover.
                    st.partitioned_peers.insert(dst);
                    st.partition_failfasts += 1;
                    let failed = purge_unacked(inner, &mut st, dst);
                    Action::Failed(failed, false)
                } else if retries >= inner.cfg.max_retries {
                    st.dead_peers.insert(dst);
                    let failed = purge_unacked(inner, &mut st, dst);
                    Action::Failed(failed, true)
                } else if st.send_q.iter().filter(|r| r.prewrapped).count()
                    >= inner.cfg.retx_queue_cap.max(1)
                {
                    // Bounded retransmit queue: the send thread is already
                    // drowning in queued retransmissions. Defer this one —
                    // back the RTO off and let the re-armed timer retry —
                    // so memory stays bounded under sustained faults.
                    st.retx_deferred += 1;
                    st.backoff_events += 1;
                    st.rtt.entry(dst).or_default().backoff_exp += 1;
                    Action::Deferred
                } else {
                    let u = st.unacked.get_mut(&(dst, seq)).expect("key just found");
                    u.retries += 1;
                    u.retransmitted = true; // Karn: its ACK is now ambiguous
                    // Budget accounting: the give-up branch above must fire
                    // before a frame can exceed its configured retry budget.
                    if inner.cfg.analysis.active() && u.retries > inner.cfg.max_retries {
                        inner.cfg.analysis.report(
                            "retransmit-budget",
                            format!("proc{}", inner.id),
                            format!(
                                "frame (proc{dst}, seq {seq}) at {} retries exceeds budget {}",
                                u.retries, inner.cfg.max_retries
                            ),
                        );
                    }
                    let req = SendReq {
                        from_thread: u.from_thread,
                        to: u.to,
                        // A retransmitted chunk must still carry its
                        // original class so the receiver routes it into
                        // reassembly.
                        class: u.class,
                        user_tag: u.user_tag,
                        data: u.wrapped.clone(),
                        tier: u.tier,
                        waiter: None,
                        prewrapped: true,
                        seq: None,
                        causal: 0,
                    };
                    st.retransmits += 1;
                    st.backoff_events += 1;
                    st.rtt.entry(dst).or_default().backoff_exp += 1;
                    st.send_q.push_back(req);
                    Action::Retry
                }
            }
        }
    };
    match action {
        Action::Done => {}
        Action::Retry => {
            if let Some(tid) = inner.sys.lock().send {
                inner.mts.unblock(sim, tid);
            }
            // Re-arm with the doubled timeout.
            restart_retx_timer(inner, dst);
        }
        Action::Deferred => {
            inner.sim.with_metrics(|mm| mm.inc("retx.backpressure", 1));
            // Re-arm with the doubled timeout; the queue drains meanwhile.
            restart_retx_timer(inner, dst);
        }
        Action::Failed(failed, permanent) => {
            if !permanent {
                inner.sim.with_metrics(|mm| mm.inc("rto.partition_failfast", 1));
            }
            for (to, tag) in failed {
                raise_local_exception(
                    inner,
                    NcsException {
                        from: to,
                        code: EXC_DELIVERY_FAILED,
                        detail: Bytes::from(tag.to_le_bytes().to_vec()),
                    },
                );
            }
            // Wake the send thread unconditionally: it may be parked on
            // credits for the unreachable peer, or draining for shutdown.
            if let Some(tid) = inner.sys.lock().send {
                inner.mts.unblock(sim, tid);
            }
            let (empty, shutdown) = {
                let st = inner.state.lock();
                (st.unacked.is_empty(), st.shutdown)
            };
            if empty && shutdown {
                signal_quiescent(inner);
            }
        }
    }
}

/// Bytes of the chunk header a [`MsgClass::Frag`] payload carries:
/// `[xfer_id u32 LE][chunk index u32 LE][chunk count u32 LE]`.
const FRAG_HEADER_BYTES: usize = 12;

/// Allocates a sequence number toward `req.to` (wrapping at u32) and
/// registers the wrapped form of `req.data` for retransmission. Returns
/// `(seq, wrapped payload)`. Must only be called with checksum/retransmit
/// error control active.
fn register_unacked(inner: &Arc<ProcInner>, st: &mut MpsState, req: &SendReq) -> (u32, Bytes) {
    let dst = req.to;
    let seq = {
        let c = st.next_seq.entry(dst.proc).or_insert(0);
        let s = *c;
        // Wrap rather than overflow: sequence numbers are serial numbers,
        // and the receiver's duplicate window compares them as such.
        *c = c.wrapping_add(1);
        s
    };
    *st.seqs_allocated.entry(dst.proc).or_insert(0) += 1;
    // Monotonicity: a freshly allocated sequence number must never
    // collide with a frame still awaiting acknowledgement (u32
    // wrap-around with a full window would silently reuse one).
    if inner.cfg.analysis.active() && st.unacked.contains_key(&(dst.proc, seq)) {
        inner.cfg.analysis.report(
            "seq-monotonicity",
            format!("proc{}", inner.id),
            format!(
                "seq {seq} toward proc{} re-allocated while still unacknowledged",
                dst.proc
            ),
        );
    }
    let wrapped = wrap_checked(seq, &req.data);
    st.unacked.insert(
        (dst.proc, seq),
        UnackedMsg {
            to: dst,
            from_thread: req.from_thread,
            user_tag: req.user_tag,
            tier: req.tier,
            class: req.class,
            wrapped: wrapped.clone(),
            retries: 0,
            sent_at: None,
            retransmitted: false,
        },
    );
    (seq, wrapped)
}

/// The causal stage sequence a tracked data message walks from `NCS_send`
/// to `NCS_recv`. Chunked transfers visit `reassembled`; monolithic ones
/// skip it. Consecutive present stages are contiguous, so their diffs sum
/// exactly to the end-to-end latency.
pub const CAUSAL_STAGES: [&str; 7] = [
    "enqueued",
    "sq_popped",
    "wire_start",
    "arrived",
    "picked",
    "reassembled",
    "delivered",
];

/// Latency-component histogram fed by the stage *ending* at this mark.
pub fn causal_component(stage: &str) -> &'static str {
    match stage {
        "sq_popped" => "obs.queue_wait",
        "wire_start" => "obs.inject",
        "arrived" => "obs.wire",
        "picked" => "obs.pickup",
        "reassembled" => "obs.reassembly",
        "delivered" => "obs.deliver",
        _ => "obs.other",
    }
}

/// Stamps `delivered` on the message's timeline and folds the stage diffs
/// into the per-component latency histograms (plus `obs.e2e`).
fn observe_delivery(inner: &Arc<ProcInner>, causal: u64, now: SimTime) {
    if causal == 0 {
        return;
    }
    inner.sim.with_metrics(|mm| {
        mm.mark(causal, "delivered", now);
        let Some(tl) = mm.timeline(causal).cloned() else {
            return;
        };
        for w in tl.windows(2) {
            let (_, t0) = w[0];
            let (stage, t1) = w[1];
            mm.observe(causal_component(stage), t1.saturating_since(t0));
        }
        if let (Some(&(_, first)), Some(&(_, last))) = (tl.first(), tl.last()) {
            mm.observe("obs.e2e", last.saturating_since(first));
        }
    });
}

/// Records `msg` in the analysis delivery log at the instant the
/// application accepts it. This feeds schedule exploration's
/// observational-equivalence oracle: the delivered-payload sequence per
/// `(src, dst, tag)` channel must be identical across every legal
/// interleaving of the same workload. Thread ids ride in the key's high
/// tag bits so each thread-to-thread flow is its own channel (cross-
/// thread matching order genuinely may vary between legal schedules).
fn note_app_delivery(inner: &Arc<ProcInner>, msg: &NcsMsg) {
    if inner.cfg.analysis.active() {
        let tag = (u64::from(msg.from.thread & 0xFFFF) << 48)
            | (u64::from(msg.to_thread & 0xFFFF) << 32)
            | u64::from(msg.tag);
        inner
            .cfg
            .analysis
            .note_delivery(msg.from.proc, inner.id, tag, &msg.data);
    }
}

/// Puts one request on the wire and runs its post-send bookkeeping: RTT
/// stamp + retransmission timer for checked frames, the sent counter, and
/// the blocked sender's wakeup.
fn transmit_one(inner: &Arc<ProcInner>, m: &MtsCtx, req: SendReq) {
    let policy = MtsWait(m);
    let net = &inner.nets[req.tier];
    let tag = encode_tag(req.class, req.from_thread, req.to.thread, req.user_tag);
    let dst = req.to;
    if req.causal != 0 {
        // The wire tag is fully packed, so the causal id cannot ride it.
        // Correlate across processes through the shared registry instead:
        // the transport stamps `sent_at = now()` at its entry, which is
        // exactly this instant, so (dst, tag, sent_at) keys the delivery.
        let t = m.ctx().now();
        inner.sim.with_metrics(|mm| {
            mm.mark(req.causal, "wire_start", t);
            mm.bind_wire((dst.proc as u64, tag, t.as_ps()), req.causal);
        });
    }
    net.send(
        m.ctx(),
        &policy,
        NodeId(inner.id as u32),
        NodeId(dst.proc as u32),
        tag,
        req.data,
    );
    // First transmission of a checked frame: stamp the RTT clock — at the
    // instant the frame actually hits the wire, never at queue time — and
    // make sure the destination's loss-recovery timer is running.
    // Retransmissions are re-armed by `retx_fire` itself.
    if let Some(seq) = req.seq {
        {
            let mut st = inner.state.lock();
            if let Some(u) = st.unacked.get_mut(&(dst.proc, seq)) {
                if u.sent_at.is_none() {
                    u.sent_at = Some(m.ctx().now());
                }
            }
        }
        ensure_retx_timer(inner, dst.proc);
    }
    if req.class == MsgClass::Data {
        inner.state.lock().sent_msgs += 1;
    }
    if let Some(w) = req.waiter {
        m.unblock(w);
    }
}

/// Transmits queued control traffic (credit grants, ACKs, NACKs) and
/// retransmissions while the send thread is gated on credits or I/O
/// buffers. Without this, a gated data send head-of-line-blocks the very
/// frames whose round trip would open the gate — two peers both parked on
/// credits with grants queued behind them would deadlock. Returns whether
/// anything was sent.
fn drain_control(inner: &Arc<ProcInner>, m: &MtsCtx) -> bool {
    let mut any = false;
    loop {
        let req = {
            let mut st = inner.state.lock();
            let pos = st.send_q.iter().position(|r| {
                r.prewrapped
                    || matches!(
                        r.class,
                        MsgClass::Credit | MsgClass::Ack | MsgClass::Nack
                    )
            });
            pos.and_then(|i| st.send_q.remove(i))
        };
        let Some(req) = req else { break };
        // A retransmission toward a peer declared dead (or partitioned)
        // mid-queue is dropped silently: the purge already raised its
        // exception.
        if req.prewrapped && {
            let st = inner.state.lock();
            st.dead_peers.contains(&req.to.proc)
                || st.partitioned_peers.contains(&req.to.proc)
        } {
            continue;
        }
        transmit_one(inner, m, req);
        any = true;
    }
    any
}

/// Blocks the send thread until a credit toward `dst` is available (and
/// spends it), draining control traffic while parked. Returns `false` if
/// the peer was declared dead while waiting — credits will never arrive.
fn acquire_send_credit(inner: &Arc<ProcInner>, m: &MtsCtx, dst: usize) -> bool {
    if !matches!(inner.cfg.flow, FlowControl::Credit { .. }) {
        return true;
    }
    enum Gate {
        Open,
        Dead,
        Starved,
    }
    loop {
        let gate = {
            let mut st = inner.state.lock();
            if st.dead_peers.contains(&dst) || st.partitioned_peers.contains(&dst) {
                // The retry path declared the peer dead (or the partition
                // detector cut it off) while we were parked; credits will
                // never arrive.
                st.send_waiting_credit = None;
                Gate::Dead
            } else {
                let c = st.credits.entry(dst).or_insert(0);
                if *c > 0 {
                    *c -= 1;
                    Gate::Open
                } else {
                    st.send_waiting_credit = Some(dst);
                    Gate::Starved
                }
            }
        };
        match gate {
            Gate::Open => return true,
            Gate::Dead => return false,
            Gate::Starved => {
                if drain_control(inner, m) {
                    continue; // a grant/retransmission went out; recheck
                }
                // Woken when credits arrive (or the peer dies). The
                // grant comes in through the receive system thread, so
                // record the wait edge toward it for the deadlock
                // analysis; it is External (never Blocked) and cannot
                // close a false cycle. Copy the tid out first: the
                // grant path takes `sys`, so the guard must not be
                // held across the park.
                let recv = inner.sys.lock().recv;
                match recv {
                    Some(t) => m.block_on(t),
                    None => m.block(),
                }
            }
        }
    }
}

/// Blocks the send thread until fewer than `window` frames toward `dst`
/// await acknowledgment — i.e. until an I/O buffer frees up — draining
/// control traffic while parked. Returns `false` if the peer was declared
/// dead while waiting.
fn wait_for_io_buffer(inner: &Arc<ProcInner>, m: &MtsCtx, dst: usize, window: usize) -> bool {
    enum Gate {
        Open,
        Dead,
        Full,
    }
    loop {
        let gate = {
            let mut st = inner.state.lock();
            if st.dead_peers.contains(&dst) || st.partitioned_peers.contains(&dst) {
                st.send_waiting_ack = None;
                Gate::Dead
            } else if st.unacked.keys().filter(|&&(d, _)| d == dst).count() < window {
                Gate::Open
            } else {
                st.send_waiting_ack = Some(dst);
                Gate::Full
            }
        };
        match gate {
            Gate::Open => return true,
            Gate::Dead => return false,
            Gate::Full => {
                // The acks that would free a buffer may themselves depend on
                // retransmissions (or our own acks) queued behind this
                // transfer — drain them before parking, or the pipeline
                // wedges with a full window of lost chunks.
                if drain_control(inner, m) {
                    continue;
                }
                let recv = inner.sys.lock().recv;
                match recv {
                    Some(t) => m.block_on(t),
                    None => m.block(),
                }
            }
        }
    }
}

/// The pipelined Approach-2 data path: chunks one large data message into
/// I/O-buffer-sized CS-PDUs ([`MsgClass::Frag`] frames), keeping up to
/// [`NcsConfig::io_buffers`] of them in flight toward the destination and
/// refilling buffers as acknowledgments free them. One credit covers the
/// whole logical message; the receiver grants it back on reassembly.
fn send_fragmented(inner: &Arc<ProcInner>, m: &MtsCtx, req: SendReq) {
    let chunk_bytes = inner.cfg.io_buffer_bytes.max(1);
    let total = req.data.len().div_ceil(chunk_bytes) as u32;
    let window = inner.cfg.io_buffers.max(1) as usize;
    let checked = inner.cfg.error == ErrorControl::ChecksumRetransmit;
    let xfer = {
        let mut st = inner.state.lock();
        let x = st.next_xfer_id;
        st.next_xfer_id = st.next_xfer_id.wrapping_add(1);
        x
    };
    let mut peer_died = !acquire_send_credit(inner, m, req.to.proc);
    let mut any_registered = false;
    if !peer_died {
        for idx in 0..total {
            if checked && !wait_for_io_buffer(inner, m, req.to.proc, window) {
                peer_died = true;
                break;
            }
            let lo = idx as usize * chunk_bytes;
            let hi = (lo + chunk_bytes).min(req.data.len());
            let mut v = Vec::with_capacity(FRAG_HEADER_BYTES + (hi - lo));
            v.extend_from_slice(&xfer.to_le_bytes());
            v.extend_from_slice(&idx.to_le_bytes());
            v.extend_from_slice(&total.to_le_bytes());
            v.extend_from_slice(&req.data[lo..hi]);
            let mut chunk = SendReq {
                from_thread: req.from_thread,
                to: req.to,
                class: MsgClass::Frag,
                user_tag: req.user_tag,
                data: Bytes::from(v),
                tier: req.tier,
                waiter: None,
                prewrapped: false,
                seq: None,
                causal: req.causal,
            };
            if checked {
                let mut st = inner.state.lock();
                let (seq, wrapped) = register_unacked(inner, &mut st, &chunk);
                chunk.seq = Some(seq);
                chunk.data = wrapped;
                any_registered = true;
            }
            transmit_one(inner, m, chunk);
        }
    }
    {
        let mut st = inner.state.lock();
        if peer_died {
            st.delivery_failures += 1;
        } else {
            st.sent_msgs += 1;
            st.fragmented_msgs += 1;
            st.fragments_sent += u64::from(total);
        }
    }
    if peer_died && !any_registered {
        // No chunk reached the unacked table, so the give-up purge had
        // nothing of this message to report — raise the failure here.
        raise_local_exception(
            inner,
            NcsException {
                from: req.to,
                code: EXC_DELIVERY_FAILED,
                detail: Bytes::from(req.user_tag.to_le_bytes().to_vec()),
            },
        );
    }
    if let Some(w) = req.waiter {
        m.unblock(w);
    }
}

/// Body of the send system thread.
fn send_thread_body(inner: &Arc<ProcInner>, m: &MtsCtx) {
    loop {
        let req = {
            let mut st = inner.state.lock();
            match st.send_q.pop_front() {
                Some(r) => Some(r),
                None => {
                    if may_teardown(inner, &st) {
                        break;
                    }
                    None
                }
            }
        };
        let Some(mut req) = req else {
            m.block(); // woken by NCS_send (or shutdown / final ack)
            continue;
        };
        if req.causal != 0 {
            let t = m.ctx().now();
            inner.sim.with_metrics(|mm| mm.mark(req.causal, "sq_popped", t));
        }
        // Queued frames toward a peer already declared dead fail here
        // rather than burning a fresh retry budget each. A prewrapped frame
        // is a retransmission whose give-up purge already raised the
        // exception, so it is dropped silently.
        if matches!(req.class, MsgClass::Data | MsgClass::Frag)
            && inner.state.lock().dead_peers.contains(&req.to.proc)
        {
            if !req.prewrapped {
                raise_local_exception(
                    inner,
                    NcsException {
                        from: req.to,
                        code: EXC_DELIVERY_FAILED,
                        detail: Bytes::from(req.user_tag.to_le_bytes().to_vec()),
                    },
                );
                inner.state.lock().delivery_failures += 1;
            }
            if let Some(w) = req.waiter {
                m.unblock(w);
            }
            continue;
        }
        // A destination behind a detected partition: probe the route. If
        // the outage window has ended, drop the mark and proceed — this is
        // the recovery path — re-seeding the credit window, since the
        // frames that spent credits were purged and the peer can never
        // grant them back. Otherwise fail fast with the same typed
        // exception the partition purge used.
        if matches!(req.class, MsgClass::Data | MsgClass::Frag)
            && inner.state.lock().partitioned_peers.contains(&req.to.proc)
        {
            let reachable = !inner.nets[req.tier].peer_unreachable(
                NodeId(inner.id as u32),
                NodeId(req.to.proc as u32),
                m.ctx().now(),
            );
            if reachable {
                let mut st = inner.state.lock();
                st.partitioned_peers.remove(&req.to.proc);
                if let FlowControl::Credit { window } = inner.cfg.flow {
                    st.credits.insert(req.to.proc, window);
                }
            } else {
                if !req.prewrapped {
                    raise_local_exception(
                        inner,
                        NcsException {
                            from: req.to,
                            code: EXC_DELIVERY_FAILED,
                            detail: Bytes::from(req.user_tag.to_le_bytes().to_vec()),
                        },
                    );
                    inner.state.lock().delivery_failures += 1;
                }
                if let Some(w) = req.waiter {
                    m.unblock(w);
                }
                continue;
            }
        }
        // Approach 2: a data message wider than one I/O buffer goes out
        // chunked, with multiple buffer-sized CS-PDUs in flight.
        if req.class == MsgClass::Data
            && !req.prewrapped
            && req.data.len() > inner.cfg.io_buffer_bytes
        {
            send_fragmented(inner, m, req);
            continue;
        }
        // Error control: frame data messages with a sequence number and
        // checksum, keeping a copy for retransmission until acknowledged.
        if inner.cfg.error == ErrorControl::ChecksumRetransmit
            && req.class == MsgClass::Data
            && !req.prewrapped
        {
            let mut st = inner.state.lock();
            let (seq, wrapped) = register_unacked(inner, &mut st, &req);
            drop(st);
            req.seq = Some(seq);
            req.data = wrapped;
        }
        // Credit flow control gates fresh application data; retransmissions
        // ride free (the receiver grants credits only for frames it accepts
        // for delivery, so spending per retransmission would leak).
        if req.class == MsgClass::Data
            && !req.prewrapped
            && !acquire_send_credit(inner, m, req.to.proc)
        {
            // Peer died while we were parked on credits. Any unacked entry
            // was purged and reported by the give-up path; a frame without
            // one (no error control) must raise its failure here, or the
            // send would vanish silently.
            if req.seq.is_none() {
                raise_local_exception(
                    inner,
                    NcsException {
                        from: req.to,
                        code: EXC_DELIVERY_FAILED,
                        detail: Bytes::from(req.user_tag.to_le_bytes().to_vec()),
                    },
                );
                inner.state.lock().delivery_failures += 1;
            }
            if let Some(w) = req.waiter {
                m.unblock(w);
            }
            continue;
        }
        transmit_one(inner, m, req);
    }
}

/// Body of the receive system thread.
fn recv_thread_body(inner: &Arc<ProcInner>, m: &MtsCtx) {
    loop {
        // Poll the transport (a `p4_messages_available` round).
        if !inner.cfg.poll_cost.is_zero() {
            m.ctx().sleep(inner.cfg.poll_cost);
        }
        let mut progress = false;
        while let Some((tier, d)) = inner.merged.try_recv(&inner.sim) {
            ingest(inner, m, tier, d);
            progress = true;
        }
        {
            let mut st = inner.state.lock();
            match_requests(inner, &mut st);
        }
        if progress {
            continue;
        }
        {
            // Exit only when the process is done, error control has no
            // outstanding frames that might still need retransmission,
            // and (in a collective) every peer is equally quiescent — a
            // lingering receiver keeps re-ACKing duplicates for peers
            // whose final acknowledgment was lost.
            let st = inner.state.lock();
            if may_teardown(inner, &st) && inner.merged.is_empty() {
                break;
            }
        }
        if inner.mts.has_runnable() {
            // Others can use the CPU; poll again at the next dispatch.
            m.yield_now();
            continue;
        }
        // Process otherwise idle: wait in the kernel for the next delivery.
        let next = m.external_block(|| inner.merged.recv(m.ctx()));
        match next {
            Ok((tier, d)) => {
                ingest(inner, m, tier, d);
                let mut st = inner.state.lock();
                match_requests(inner, &mut st);
            }
            Err(_closed) => break,
        }
    }
    // Conservation at shutdown: every data message that reached this
    // process must have been consumed by some thread; data stranded in the
    // stash was sent (and acknowledged) but never received.
    if inner.cfg.analysis.active() {
        let st = inner.state.lock();
        for msg in st.stash.iter().filter(|s| s.class == MsgClass::Data) {
            inner.cfg.analysis.report(
                "unconsumed-message",
                format!("proc{}", inner.id),
                format!(
                    "data message tag {} from proc{}/t{} to thread {} was never received",
                    msg.tag, msg.from.proc, msg.from.thread, msg.to_thread
                ),
            );
        }
        // Likewise no chunked transfer may end half-reassembled: every
        // chunk was individually acknowledged, so the bytes are stranded.
        for (&(src, xfer), asm) in st.reassembly.iter() {
            inner.cfg.analysis.report(
                "incomplete-transfer",
                format!("proc{}", inner.id),
                format!(
                    "chunked transfer {xfer} from proc{src} ended with {}/{} chunks",
                    asm.have, asm.total
                ),
            );
        }
    }
}

/// Returns one flow-control credit to `src` for a frame accepted for
/// delivery, batching grants at half the window. Only accepted frames
/// grant: the sender spends a credit per fresh logical message
/// (retransmissions ride free), so granting per raw arrival would push
/// its balance above the window.
fn grant_credit(inner: &Arc<ProcInner>, tier: usize, src: usize) {
    let FlowControl::Credit { window } = inner.cfg.flow else {
        return;
    };
    let grant = {
        let mut st = inner.state.lock();
        let consumed = st.consumed.entry(src).or_insert(0);
        *consumed += 1;
        let grant_at = (window / 2).max(1);
        if *consumed >= grant_at {
            let g = *consumed;
            *consumed = 0;
            st.send_q.push_back(SendReq {
                from_thread: 0,
                to: ThreadAddr::new(src, 0),
                class: MsgClass::Credit,
                user_tag: g,
                data: Bytes::new(),
                tier,
                waiter: None,
                prewrapped: false,
                seq: None,
                causal: 0,
            });
            true
        } else {
            false
        }
    };
    if grant {
        if let Some(tid) = inner.sys.lock().send {
            inner.mts.unblock(&inner.sim, tid);
        }
    }
}

/// Routes one accepted [`MsgClass::Frag`] chunk into its reassembly slot.
/// Completing the set stashes the rebuilt [`MsgClass::Data`] message and
/// grants back the one credit its sender spent on the whole transfer.
fn ingest_fragment(
    inner: &Arc<ProcInner>,
    tier: usize,
    from: ThreadAddr,
    to_thread: u32,
    user_tag: u32,
    payload: Bytes,
    causal: u64,
) {
    let malformed = |why: String| {
        if inner.cfg.analysis.active() {
            inner.cfg.analysis.report(
                "malformed-fragment",
                format!("proc{}", inner.id),
                format!("fragment from proc{}: {why}", from.proc),
            );
        }
    };
    if payload.len() < FRAG_HEADER_BYTES {
        malformed(format!("{} bytes is shorter than the chunk header", payload.len()));
        return;
    }
    let xfer = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let idx = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
    let total = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    if total == 0 || idx >= total {
        malformed(format!("chunk {idx} outside its declared count {total}"));
        return;
    }
    let key = (from.proc, xfer);
    let mut mismatch = None;
    let arm_reaper;
    let complete = {
        let now = inner.sim.now();
        let mut st = inner.state.lock();
        let slot = st.reassembly.entry(key).or_insert_with(|| FragAsm {
            total,
            parts: vec![None; total as usize],
            have: 0,
            last_progress: now,
            reaper: None,
        });
        let done = if slot.total != total {
            mismatch = Some(slot.total);
            false
        } else if slot.parts[idx as usize].is_some() {
            // A duplicate chunk that slipped past the sequence window
            // (e.g. with error control off): already placed, ignore.
            false
        } else {
            slot.parts[idx as usize] = Some(payload.slice(FRAG_HEADER_BYTES..));
            slot.have += 1;
            slot.last_progress = now;
            slot.have == slot.total
        };
        // First chunk of a transfer with reclamation enabled: arm the
        // reaper once the lock is released. (It lazily re-checks progress
        // on expiry, so per-chunk re-arming is unnecessary.)
        arm_reaper =
            !done && slot.reaper.is_none() && inner.cfg.reassembly_timeout.is_some();
        if done {
            let asm = st.reassembly.remove(&key).expect("entry just completed");
            // The transfer is whole: the reclamation timer is dead weight
            // in the kernel queue — retract it.
            if let Some(h) = asm.reaper {
                inner.sim.cancel_scheduled(h);
            }
            let mut v = Vec::with_capacity(
                asm.parts.iter().map(|p| p.as_ref().map_or(0, Bytes::len)).sum(),
            );
            for p in asm.parts {
                v.extend_from_slice(&p.expect("all chunks present"));
            }
            st.stash.push_back(NcsMsg {
                from,
                to_thread,
                tag: user_tag,
                data: Bytes::from(v),
                class: MsgClass::Data,
                causal,
            });
            st.peak_stash = st.peak_stash.max(st.stash.len());
            st.reassembled_msgs += 1;
        }
        done
    };
    if complete && causal != 0 {
        let t = inner.sim.now();
        inner.sim.with_metrics(|mm| mm.mark(causal, "reassembled", t));
    }
    if let Some(expected) = mismatch {
        malformed(format!(
            "transfer {xfer} declares {total} chunks, earlier chunks declared {expected}"
        ));
    }
    if arm_reaper {
        arm_reassembly_reaper(inner, key);
    }
    if complete {
        grant_credit(inner, tier, from.proc);
    }
}

/// Arms the reclamation timer for one partial reassembly buffer at
/// `last_progress + reassembly_timeout`. The expiry re-checks progress, so
/// chunks landing meanwhile simply push the deadline out.
fn arm_reassembly_reaper(inner: &Arc<ProcInner>, key: (usize, u32)) {
    let Some(timeout) = inner.cfg.reassembly_timeout else {
        return;
    };
    let deadline = {
        let st = inner.state.lock();
        match st.reassembly.get(&key) {
            Some(asm) => asm.last_progress + timeout,
            None => return, // completed (or reclaimed) meanwhile
        }
    };
    let sim = inner.sim.clone();
    let cb_inner = Arc::clone(inner);
    let handle = sim.schedule_cancellable(deadline, move |sim| {
        reasm_reaper_fire(&cb_inner, sim, key);
    });
    let mut st = inner.state.lock();
    match st.reassembly.get_mut(&key) {
        Some(asm) => {
            if let Some(old) = asm.reaper.replace(handle) {
                inner.sim.cancel_scheduled(old);
            }
        }
        None => {
            // Completed (or reclaimed) meanwhile: retract the fresh timer.
            sim.cancel_scheduled(handle);
        }
    }
}

/// Expiry of a reassembly reclamation timer: if the transfer has seen no
/// chunk for a full `reassembly_timeout`, its sender is gone (crash-stop,
/// give-up) — drop the partial buffers so receiver memory is not leaked;
/// otherwise re-arm from the latest progress.
fn reasm_reaper_fire(inner: &Arc<ProcInner>, sim: &Sim, key: (usize, u32)) {
    let timeout = inner.cfg.reassembly_timeout.expect("reaper only armed when set");
    let reclaimed = {
        let mut st = inner.state.lock();
        match st.reassembly.get(&key) {
            None => return, // completed meanwhile
            Some(asm) if sim.now().saturating_since(asm.last_progress) >= timeout => {
                st.reassembly.remove(&key);
                st.reassembly_reclaimed += 1;
                true
            }
            Some(_) => false,
        }
    };
    if reclaimed {
        inner.sim.with_metrics(|mm| mm.inc("reasm.reclaimed", 1));
    } else {
        arm_reassembly_reaper(inner, key);
    }
}

/// Moves one delivery into the stash, charging receive-side protocol cost
/// and running class-specific plumbing (credits).
fn ingest(inner: &Arc<ProcInner>, m: &MtsCtx, tier: usize, d: Delivery) {
    let net = &inner.nets[tier];
    let cost = net.recv_pickup_cost(NodeId(inner.id as u32), d.payload.len());
    m.ctx().sleep(cost);
    // Resolve the sender's wire-key binding back to its causal timeline
    // (0 for control traffic and untracked frames). Stage marks are only
    // stamped on the accepted paths below, so duplicates and corrupted
    // frames never disorder a timeline.
    let causal = inner
        .sim
        .with_metrics(|mm| mm.resolve_wire((inner.id as u64, d.tag, d.sent_at.as_ps())))
        .unwrap_or(0);
    let t_arrived = d.arrived_at;
    let t_picked = m.ctx().now();
    let (class, from_thread, to_thread, user_tag) = decode_tag(d.tag);
    let from = ThreadAddr::new(d.src.idx(), from_thread);
    let mut payload = d.payload;
    // Error control: verify framed data; acknowledge or request retransmit.
    if inner.cfg.error == ErrorControl::ChecksumRetransmit
        && matches!(class, MsgClass::Data | MsgClass::Frag)
    {
        let (seq, parsed) = unwrap_checked(&payload);
        let (reply_class, duplicate) = match parsed {
            Ok(clean) => {
                payload = clean;
                let dup = inner
                    .state
                    .lock()
                    .seen_seqs
                    .entry(from.proc)
                    .or_default()
                    .observe(seq);
                (MsgClass::Ack, dup)
            }
            Err(()) => (MsgClass::Nack, false),
        };
        {
            let mut st = inner.state.lock();
            st.send_q.push_back(SendReq {
                from_thread: 0,
                to: ThreadAddr::new(from.proc, 0),
                class: reply_class,
                user_tag: seq,
                data: Bytes::new(),
                tier,
                waiter: None,
                prewrapped: false,
                seq: None,
                causal: 0,
            });
        }
        if let Some(tid) = inner.sys.lock().send {
            inner.mts.unblock(&inner.sim, tid);
        }
        if reply_class == MsgClass::Nack {
            return; // drop the corrupted frame; the sender retransmits
        }
        if duplicate {
            inner.state.lock().dup_suppressed += 1;
            return; // re-ACKed above; already delivered once
        }
    }
    match class {
        MsgClass::Ack => {
            let seq = user_tag;
            let mut spurious = false;
            let mut restart = false;
            let (wake_send, empty_after, shutdown) = {
                let mut st = inner.state.lock();
                // Monotonicity: an ACK can only name a sequence number this
                // process has already allocated toward that peer. Wrap-aware:
                // the valid numbers are the `total` values on the u32 circle
                // ending just before `next_seq`.
                if inner.cfg.analysis.active() {
                    let total = st.seqs_allocated.get(&from.proc).copied().unwrap_or(0);
                    let next = st.next_seq.get(&from.proc).copied().unwrap_or(0);
                    let back = next.wrapping_sub(1).wrapping_sub(seq);
                    let valid =
                        total > 0 && (total >= (1u64 << 32) || u64::from(back) < total);
                    if !valid {
                        inner.cfg.analysis.report(
                            "ack-unallocated-seq",
                            format!("proc{}", inner.id),
                            format!(
                                "ACK from proc{} names seq {seq}, outside the {total} \
                                 sequence numbers ever allocated toward it",
                                from.proc
                            ),
                        );
                    }
                }
                if let Some(u) = st.unacked.remove(&(from.proc, seq)) {
                    if !u.retransmitted {
                        // Karn's rule: only frames never retransmitted give
                        // unambiguous round-trip samples.
                        if let Some(sent) = u.sent_at {
                            let rtt = m.ctx().now().since(sent);
                            st.rtt.entry(from.proc).or_default().observe(rtt);
                            st.rtt_samples += 1;
                        }
                    } else {
                        // An ACK for a frame already retransmitted: either
                        // echo is ambiguous (Karn bars the sample), and the
                        // retransmission may well have been unnecessary —
                        // count it. Stop backing off: the peer is alive.
                        st.spurious_retx += 1;
                        spurious = true;
                        st.rtt.entry(from.proc).or_default().backoff_exp = 0;
                    }
                    // One loss-recovery timer per destination, timing the
                    // oldest frame on the wire: a partial acknowledgment
                    // restarts it (the new oldest frame gets a full RTO
                    // from now), the final one retracts it — rather than
                    // paying a stale-timer event at RTO expiry (and, for
                    // the last frame, dragging end_time out to the
                    // timeout horizon).
                    if st.unacked.keys().any(|&(d, _)| d == from.proc) {
                        restart = true;
                    } else {
                        cancel_retx_timer(inner, &mut st, from.proc);
                    }
                }
                // A freed I/O buffer reopens the pipelined send window.
                let mut wake = false;
                if st.send_waiting_ack == Some(from.proc) {
                    st.send_waiting_ack = None;
                    wake = true;
                }
                (wake, st.unacked.is_empty(), st.shutdown)
            };
            if spurious {
                inner.sim.with_metrics(|mm| mm.inc("retx.spurious", 1));
            }
            if restart {
                restart_retx_timer(inner, from.proc);
            }
            if wake_send || empty_after {
                if let Some(tid) = inner.sys.lock().send {
                    inner.mts.unblock(&inner.sim, tid);
                }
            }
            if empty_after && shutdown {
                signal_quiescent(inner);
            }
        }
        MsgClass::Nack => {
            let seq = user_tag;
            let (resend, deferred) = {
                let mut st = inner.state.lock();
                let at_cap = st.send_q.iter().filter(|r| r.prewrapped).count()
                    >= inner.cfg.retx_queue_cap.max(1);
                match st.unacked.get_mut(&(from.proc, seq)) {
                    Some(_) if at_cap => {
                        // Bounded retransmit queue: skip the NACK-driven
                        // resend; the destination's loss-recovery timer is
                        // still armed and will retry once the queue drains.
                        st.retx_deferred += 1;
                        (None, true)
                    }
                    Some(u) => {
                        u.retransmitted = true; // Karn: timing now ambiguous
                        let req = SendReq {
                            from_thread: u.from_thread,
                            to: u.to,
                            class: u.class,
                            user_tag: u.user_tag,
                            data: u.wrapped.clone(),
                            tier: u.tier,
                            waiter: None,
                            prewrapped: true,
                            seq: None,
                            causal: 0,
                        };
                        st.retransmits += 1;
                        st.send_q.push_back(req);
                        (Some(()), false)
                    }
                    None => (None, false),
                }
            };
            if deferred {
                inner.sim.with_metrics(|mm| mm.inc("retx.backpressure", 1));
            }
            if resend.is_some() {
                if let Some(tid) = inner.sys.lock().send {
                    inner.mts.unblock(&inner.sim, tid);
                }
            }
        }
        MsgClass::Exception => {
            raise_local_exception(
                inner,
                NcsException {
                    from,
                    code: user_tag,
                    detail: payload,
                },
            );
        }
        MsgClass::Credit => {
            let wake = {
                let mut st = inner.state.lock();
                let c = st.credits.entry(from.proc).or_insert(0);
                *c += user_tag;
                let total = *c;
                // Conservation: credits in flight plus credits held can
                // never exceed the window the receiver seeded.
                if inner.cfg.analysis.active() {
                    if let FlowControl::Credit { window } = inner.cfg.flow {
                        if total > window {
                            inner.cfg.analysis.report(
                                "credit-conservation",
                                format!("proc{}", inner.id),
                                format!(
                                    "credits toward proc{} reached {total}, window {window}",
                                    from.proc
                                ),
                            );
                        }
                    }
                }
                st.send_waiting_credit == Some(from.proc)
            };
            if wake {
                let send = inner.sys.lock().send;
                if let Some(tid) = send {
                    inner.state.lock().send_waiting_credit = None;
                    inner.mts.unblock(&inner.sim, tid);
                }
            }
        }
        MsgClass::Frag => {
            if causal != 0 {
                inner.sim.with_metrics(|mm| {
                    mm.mark(causal, "arrived", t_arrived);
                    mm.mark(causal, "picked", t_picked);
                });
            }
            ingest_fragment(inner, tier, from, to_thread, user_tag, payload, causal);
        }
        _ => {
            if causal != 0 {
                inner.sim.with_metrics(|mm| {
                    mm.mark(causal, "arrived", t_arrived);
                    mm.mark(causal, "picked", t_picked);
                });
            }
            {
                let mut st = inner.state.lock();
                st.stash.push_back(NcsMsg {
                    from,
                    to_thread,
                    tag: user_tag,
                    data: payload,
                    class,
                    causal,
                });
                st.peak_stash = st.peak_stash.max(st.stash.len());
            }
            if class == MsgClass::Data {
                grant_credit(inner, tier, from.proc);
            }
        }
    }
}

#[cfg(test)]
mod rto_tests {
    use super::*;

    #[test]
    fn first_sample_seeds_estimator() {
        let cfg = RtoConfig {
            initial: Dur::from_millis(500),
            min: Dur::from_millis(1),
            max: Dur::from_secs(4),
        };
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(&cfg), cfg.initial, "no sample yet: initial RTO");
        e.observe(Dur::from_millis(40));
        // SRTT = 40 ms, RTTVAR = 20 ms, RTO = 40 + 4*20 = 120 ms.
        assert_eq!(e.rto(&cfg), Dur::from_millis(120));
    }

    #[test]
    fn smoothing_follows_jacobson_gains() {
        let cfg = RtoConfig::default();
        let mut e = RttEstimator::default();
        e.observe(Dur::from_millis(40));
        e.observe(Dur::from_millis(80));
        // SRTT = 40 + (80-40)/8 = 45 ms; RTTVAR = 20 + (40-20)/4 = 25 ms.
        assert_eq!(e.srtt_ps, Dur::from_millis(45).as_ps());
        assert_eq!(e.rttvar_ps, Dur::from_millis(25).as_ps());
        assert_eq!(e.rto(&cfg), Dur::from_millis(145));
    }

    #[test]
    fn backoff_doubles_and_caps_at_max() {
        let cfg = RtoConfig {
            initial: Dur::from_millis(100),
            min: Dur::from_millis(10),
            max: Dur::from_millis(350),
        };
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(&cfg), Dur::from_millis(100));
        e.backoff_exp = 1;
        assert_eq!(e.rto(&cfg), Dur::from_millis(200));
        e.backoff_exp = 2; // 400 ms, over the ceiling
        assert_eq!(e.rto(&cfg), Dur::from_millis(350));
        e.backoff_exp = 63; // shift capped internally, no overflow
        assert_eq!(e.rto(&cfg), Dur::from_millis(350));
    }

    #[test]
    fn fresh_sample_resets_backoff() {
        let cfg = RtoConfig::default();
        let mut e = RttEstimator::default();
        e.observe(Dur::from_millis(20));
        e.backoff_exp = 5;
        e.observe(Dur::from_millis(20));
        assert_eq!(e.backoff_exp, 0);
        assert_eq!(e.rto(&cfg), e.rto(&cfg).min(cfg.max));
    }

    #[test]
    fn rto_respects_floor() {
        let cfg = RtoConfig {
            initial: Dur::from_millis(100),
            min: Dur::from_millis(50),
            max: Dur::from_secs(1),
        };
        let mut e = RttEstimator::default();
        e.observe(Dur::from_micros(10)); // tiny RTT: raw RTO ~30 us
        assert_eq!(e.rto(&cfg), cfg.min);
    }

    #[test]
    fn from_base_scales_all_three_knobs() {
        let r = RtoConfig::from_base(Dur::from_millis(20));
        // Pre-sample RTO sits at the ceiling (RFC 6298-style conservative
        // initial): a first-frame timer below the real path RTT would fire
        // a guaranteed-spurious retransmission.
        assert_eq!(r.initial, Dur::from_millis(320));
        assert_eq!(r.min, Dur::from_millis(5));
        assert_eq!(r.max, Dur::from_millis(320));
    }
}
