//! Extension experiment **X10**: event-kernel scaling.
//!
//! Two questions about the timer-wheel kernel rewrite:
//!
//! 1. **Micro** — what does one schedule/pop round trip cost on the
//!    timer wheel (pooled records, O(1) bucket insert) versus the old
//!    `BinaryHeap` + boxed-closure design it replaced? Measured here
//!    in-process over the same operation sequence; the wheel must be at
//!    or better than the heap baseline recorded in the same file.
//! 2. **Macro** — how does the full ATM stack scale from 16 to 256
//!    hosts under a collective-heavy workload (gather + broadcast
//!    rounds of small messages, the per-message-overhead regime where
//!    the paper's NCS wins)? Reports simulator throughput (events/sec,
//!    ns/event of wall time) and the kernel's peak queue depth, sampled
//!    into the `kernel.queue_depth` gauge. The sweep runs on **both
//!    green-thread engines** — the coroutine default and the
//!    parked-OS-thread fallback it replaced — so the JSON carries the
//!    before/after ns/event rows for the engine switch.
//!
//! Writes `results/BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_scale [-- --smoke] [-- --guard]
//! ```
//!
//! `--guard` is the CI perf-regression gate: it compares this machine's
//! *normalized* cost per event — the coroutine-engine sweep's ns/event
//! divided by the same run's micro wheel ns/event, cancelling out raw
//! machine speed — against the checked-in baseline
//! (`crates/bench/baselines/xp_scale_guard.txt`) and fails if any point
//! regressed by more than 15%.

use bytes::Bytes;
use ncs_core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::{AtmApiNet, AtmApiParams, HostParams, Network};
use ncs_sim::wheel::TimerWheel;
use ncs_sim::{Dur, EngineKind, Sim, SimRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::sync::Arc;
// Wall-clock reads below measure the *simulator's* real execution speed
// (events per host second); they never touch virtual time.
use std::time::Instant; // ncs-lint: allow(wall-clock)

/// Bytes per collective message: small enough that per-message software
/// overhead, not wire time, dominates — the regime the kernel rewrite
/// targets.
const MSG_BYTES: usize = 512;

/// Events in the micro schedule/pop comparison.
const MICRO_EVENTS: usize = 200_000;
/// Pending events held during the micro steady-state phase.
const MICRO_DEPTH: usize = 8_192;

fn hsm_stack(nodes: usize) -> Arc<dyn Network> {
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
    let hosts = vec![HostParams::sparc_ipx(); nodes];
    Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()))
}

/// The operation sequence both micro candidates replay: a ramp to
/// `MICRO_DEPTH` pending events, then a steady-state pop-one/push-one
/// phase (the kernel's actual regime), then a full drain. Times are
/// pseudo-random offsets spanning many wheel epochs.
fn micro_schedule(n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(42);
    (0..n)
        .map(|_| match rng.gen_index(4) {
            0 => 0,
            1 => rng.gen_range(1 << 14),
            2 => rng.gen_range(1 << 20),
            _ => rng.gen_range(1 << 26),
        })
        .collect()
}

/// ns/event on the timer wheel (pooled records, no per-event allocation).
fn micro_wheel_ns(offsets: &[u64]) -> f64 {
    let t0 = Instant::now(); // ncs-lint: allow(wall-clock)
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut now = 0u64;
    let mut sum = 0u64;
    for (seq, &dt) in offsets.iter().enumerate() {
        if wheel.len() >= MICRO_DEPTH {
            let (t, _, v) = wheel.pop().expect("non-empty");
            now = now.max(t);
            sum = sum.wrapping_add(v);
        }
        wheel.push(now + dt, seq as u64, dt);
    }
    while let Some((_, _, v)) = wheel.pop() {
        sum = sum.wrapping_add(v);
    }
    black_box(sum);
    t0.elapsed().as_secs_f64() * 1e9 / offsets.len() as f64
}

/// ns/event on the design the wheel replaced: a `BinaryHeap` ordered by
/// `(time, seq)` whose every entry carries a boxed closure — the old
/// kernel's `HeapEntry { time, seq, Box<dyn FnOnce> }` shape.
fn micro_heap_ns(offsets: &[u64]) -> f64 {
    struct Ent {
        key: Reverse<(u64, u64)>,
        f: Box<dyn FnOnce() -> u64 + Send>,
    }
    impl PartialEq for Ent {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key
        }
    }
    impl Eq for Ent {}
    impl PartialOrd for Ent {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ent {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key.cmp(&other.key)
        }
    }
    let t0 = Instant::now(); // ncs-lint: allow(wall-clock)
    let mut heap: BinaryHeap<Ent> = BinaryHeap::new();
    let mut now = 0u64;
    let mut sum = 0u64;
    for (seq, &dt) in offsets.iter().enumerate() {
        if heap.len() >= MICRO_DEPTH {
            let e = heap.pop().expect("non-empty");
            now = now.max(e.key.0 .0);
            sum = sum.wrapping_add((e.f)());
        }
        heap.push(Ent {
            key: Reverse((now + dt, seq as u64)),
            f: Box::new(move || dt),
        });
    }
    while let Some(e) = heap.pop() {
        sum = sum.wrapping_add((e.f)());
    }
    black_box(sum);
    t0.elapsed().as_secs_f64() * 1e9 / offsets.len() as f64
}

/// Self-rearming sampler feeding the `kernel.queue_depth` gauge. Records
/// [`Sim::queue_depth`] — pending events *plus* the in-flight one — which
/// is the quantity the kernel's `peak_queue_depth` high-water mark tracks;
/// sampling `pending_events()` here was the historical off-by-one (gauge
/// peak 64 vs kernel peak 65: the sampler's own one-event footprint went
/// uncounted). At arm time (called synchronously before `run()`) nothing
/// is in flight yet and the about-to-be-pushed first sampler event plays
/// that role instead — add it back so both call positions count the
/// footprint exactly once, same as the wheel's peak counter sees it.
/// Stops rearming when the queue is otherwise empty (with every other
/// activity parked and nothing pending, the run is over).
fn sample_queue_depth(sim: &Sim, every: Dur) {
    let in_run = sim.queue_depth() > sim.pending_events();
    let depth = sim.queue_depth() + usize::from(!in_run);
    let now = sim.now();
    sim.with_metrics(|m| m.gauge_set("kernel.queue_depth", 0, now, depth as i64));
    if sim.pending_events() > 0 {
        sim.schedule_in(every, move |s| sample_queue_depth(s, every));
    }
}

struct ScalePoint {
    hosts: usize,
    rounds: u32,
    events: u64,
    virtual_s: f64,
    wall_s: f64,
    events_per_sec: f64,
    peak_queue_depth: usize,
    gauge_samples: usize,
    gauge_peak: i64,
}

impl ScalePoint {
    fn ns_per_event(&self) -> f64 {
        self.wall_s * 1e9 / self.events as f64
    }
}

/// The collective: `rounds` iterations of gather-to-root (every worker
/// sends to proc 0) followed by a root broadcast, all through the full
/// ATM HSM stack, on the requested green-thread engine.
fn run_collective(hosts: usize, rounds: u32, engine: EngineKind) -> ScalePoint {
    let sim = Sim::with_engine(engine);
    let net = hsm_stack(hosts);
    let payload = Bytes::from(vec![0xC3u8; MSG_BYTES]);
    NcsWorld::launch(
        &sim,
        vec![net],
        hosts,
        NcsConfig::default(),
        move |id, proc_| {
            let payload = payload.clone();
            let n = hosts;
            proc_.t_create("w", 5, move |ncs| {
                for r in 0..rounds {
                    if id == 0 {
                        for p in 1..n {
                            ncs.recv(Some(p), None, Some(r));
                        }
                        for p in 1..n {
                            ncs.send(ThreadAddr::new(p, 0), r, payload.clone());
                        }
                    } else {
                        ncs.send(ThreadAddr::new(0, 0), r, payload.clone());
                        ncs.recv(Some(0), None, Some(r));
                    }
                }
            });
        },
    );
    sample_queue_depth(&sim, Dur::from_micros(50));
    let t0 = Instant::now(); // ncs-lint: allow(wall-clock)
    let out = sim.run();
    let wall_s = t0.elapsed().as_secs_f64(); // ncs-lint: allow(wall-clock)
    out.assert_clean();
    let (gauge_samples, gauge_peak) = sim.with_metrics(|m| {
        m.gauges()
            .filter(|((name, _), _)| *name == "kernel.queue_depth")
            .map(|(_, series)| {
                let s = series.samples();
                (
                    s.len(),
                    s.iter().map(|&(_, v)| v).max().unwrap_or(0),
                )
            })
            .next()
            .unwrap_or((0, 0))
    });
    let point = ScalePoint {
        hosts,
        rounds,
        events: out.events,
        virtual_s: out.end_time.as_secs_f64(),
        wall_s,
        events_per_sec: out.events as f64 / wall_s,
        peak_queue_depth: sim.peak_queue_depth(),
        gauge_samples,
        gauge_peak,
    };
    sim.finish();
    point
}

/// Path of the checked-in normalized-cost baseline consumed by `--guard`.
const GUARD_BASELINE: &str = "crates/bench/baselines/xp_scale_guard.txt";
/// Allowed regression over the baseline's normalized cost per event.
const GUARD_HEADROOM: f64 = 1.15;

/// `--guard`: machine-normalized perf-regression gate. Each measured
/// coroutine-engine point's cost ratio (`ns_per_event / wheel_ns`) is
/// compared against the checked-in baseline for the same `(hosts, rounds)`
/// shape; raw machine speed divides out, so the gate travels across CI
/// runners. Fails (exits non-zero via panic) past 15% regression.
fn run_guard(points: &[ScalePoint], wheel_ns: f64) {
    let text = std::fs::read_to_string(GUARD_BASELINE)
        .unwrap_or_else(|e| panic!("--guard: cannot read {GUARD_BASELINE}: {e}"));
    let mut baseline: Vec<(usize, u32, f64)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            [h, r, ratio] => match (h.parse(), r.parse(), ratio.parse()) {
                (Ok(h), Ok(r), Ok(ratio)) => baseline.push((h, r, ratio)),
                _ => panic!("--guard: malformed baseline line: {line:?}"),
            },
            _ => panic!("--guard: malformed baseline line: {line:?}"),
        }
    }
    println!("\n## perf-regression guard (normalized vs {GUARD_BASELINE})");
    let mut checked = 0;
    for p in points {
        let Some(&(_, _, base)) = baseline
            .iter()
            .find(|&&(h, r, _)| h == p.hosts && r == p.rounds)
        else {
            continue;
        };
        let ratio = p.ns_per_event() / wheel_ns;
        let verdict = if ratio <= base * GUARD_HEADROOM { "ok" } else { "FAIL" };
        println!(
            "  {:3} hosts | ratio {:7.2} | baseline {:7.2} | limit {:7.2} | {}",
            p.hosts,
            ratio,
            base,
            base * GUARD_HEADROOM,
            verdict,
        );
        assert!(
            ratio <= base * GUARD_HEADROOM,
            "ns/event at {} hosts regressed: normalized cost {ratio:.2} exceeds \
             baseline {base:.2} by more than {:.0}%",
            p.hosts,
            (GUARD_HEADROOM - 1.0) * 100.0
        );
        checked += 1;
    }
    assert!(
        checked > 0,
        "--guard: no baseline entry matched the measured sweep shape"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let guard = std::env::args().any(|a| a == "--guard");
    println!("# X10 — event-kernel scaling (timer wheel, 16..256 hosts)");
    if smoke {
        println!("# smoke mode: reduced sweep");
    }

    // Part 1: schedule/pop micro comparison, min of three runs each.
    let micro_n = if smoke { MICRO_EVENTS / 10 } else { MICRO_EVENTS };
    let offsets = micro_schedule(micro_n);
    let wheel_ns = (0..3)
        .map(|_| micro_wheel_ns(&offsets))
        .fold(f64::INFINITY, f64::min);
    let heap_ns = (0..3)
        .map(|_| micro_heap_ns(&offsets))
        .fold(f64::INFINITY, f64::min);
    println!("\n## schedule/pop round trip ({micro_n} events, depth {MICRO_DEPTH})");
    println!("  timer wheel   | {wheel_ns:6.1} ns/event");
    println!("  heap + boxes  | {heap_ns:6.1} ns/event");
    assert!(
        wheel_ns <= heap_ns,
        "the wheel ({wheel_ns:.1} ns) must not be slower than the heap \
         baseline it replaced ({heap_ns:.1} ns)"
    );

    // Part 2: collective-heavy scaling sweep through the full ATM stack,
    // once per green-thread engine. The coroutine engine is the product
    // configuration; the parked-OS-thread fallback supplies the "before"
    // rows for the engine switch.
    let host_counts: &[usize] = if smoke { &[16, 64] } else { &[16, 64, 128, 256] };
    let rounds: u32 = if smoke { 1 } else { 4 };
    let mut sweeps: Vec<(EngineKind, &str, Vec<ScalePoint>)> = Vec::new();
    for (engine, label) in [
        (EngineKind::Coroutine, "coroutine"),
        (EngineKind::OsThread, "os-thread"),
    ] {
        println!(
            "\n## collective gather+broadcast, {MSG_BYTES}-byte messages, \
             {rounds} round(s), {label} engine"
        );
        let mut points = Vec::new();
        for &hosts in host_counts {
            let p = run_collective(hosts, rounds, engine);
            println!(
                "  {:3} hosts | {:8} ev | {:9.6}s virtual | {:6.3}s wall | {:9.0} ev/s | peak q {:5} | gauge peak {:5} ({} samples)",
                p.hosts,
                p.events,
                p.virtual_s,
                p.wall_s,
                p.events_per_sec,
                p.peak_queue_depth,
                p.gauge_peak,
                p.gauge_samples,
            );
            assert!(
                p.gauge_samples > 0,
                "queue-depth sampler never fired at {hosts} hosts"
            );
            assert_eq!(
                p.gauge_peak as usize, p.peak_queue_depth,
                "the queue-depth gauge's peak must agree exactly with the \
                 kernel's high-water mark (the sampler reads Sim::queue_depth)"
            );
            points.push(p);
        }
        sweeps.push((engine, label, points));
    }
    let points = &sweeps[0].2; // coroutine rows: the product configuration
    let os_points = &sweeps[1].2;

    println!("\n## engine switch: ns/event, os-thread -> coroutine");
    for (c, o) in points.iter().zip(os_points.iter()) {
        println!(
            "  {:3} hosts | {:8.1} -> {:6.1} ns/event | {:4.1}x",
            c.hosts,
            o.ns_per_event(),
            c.ns_per_event(),
            o.ns_per_event() / c.ns_per_event(),
        );
    }

    if guard {
        run_guard(points, wheel_ns);
    }

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n  \"experiment\": \"xp_scale\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"micro\": {{\"events\": {micro_n}, \"depth\": {MICRO_DEPTH}, \
         \"wheel_ns_per_event\": {wheel_ns:.2}, \"heap_ns_per_event\": {heap_ns:.2}}},\n"
    ));
    for (key, pts) in [("scaling", points), ("scaling_os_thread", os_points)] {
        json.push_str(&format!("  \"{key}\": [\n"));
        for (i, p) in pts.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"hosts\": {}, \"rounds\": {}, \"msg_bytes\": {MSG_BYTES}, \
                 \"events\": {}, \"virtual_s\": {:.9}, \"wall_s\": {:.6}, \
                 \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \
                 \"peak_queue_depth\": {}, \"queue_depth_gauge_peak\": {}, \
                 \"queue_depth_samples\": {}}}{}\n",
                p.hosts,
                p.rounds,
                p.events,
                p.virtual_s,
                p.wall_s,
                p.events_per_sec,
                p.ns_per_event(),
                p.peak_queue_depth,
                p.gauge_peak,
                p.gauge_samples,
                if i + 1 < pts.len() { "," } else { "" },
            ));
        }
        json.push_str("  ],\n");
    }
    json.push_str("  \"engine_speedup\": [\n");
    for (i, (c, o)) in points.iter().zip(os_points.iter()).enumerate() {
        json.push_str(&format!(
            "    {{\"hosts\": {}, \"os_thread_ns_per_event\": {:.1}, \
             \"coroutine_ns_per_event\": {:.1}, \"speedup\": {:.2}}}{}\n",
            c.hosts,
            o.ns_per_event(),
            c.ns_per_event(),
            o.ns_per_event() / c.ns_per_event(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote results/BENCH_kernel.json");
}
