//! Extension experiment **X7**: chaos sweep — the fault model meets the
//! applications.
//!
//! The paper's testbed was a real FORE ATM LAN, where cells really do get
//! damaged: single-bit header errors (corrected by HEC), payload damage
//! (rejected by the AAL5 CRC-32), cells lost to switch output-buffer
//! overflow, and links that flap. This harness injects all of those with
//! [`ncs_net::ChaosNet`] plus the fabric's own flap/overflow machinery and
//! reruns the paper's three applications — matmul (Table 1), the JPEG
//! pipeline (Table 2) and the FFT (Table 3) — under escalating damage.
//!
//! The claim under test: NCS error control (checksum + retransmit with an
//! adaptive, Jacobson-style RTO) delivers **bit-exact** application results
//! at every fault level, at a visible cost in elapsed time and
//! retransmissions. A transport microscope (one producer/consumer pair)
//! reports the retransmit/backoff/RTO numbers per level, and a
//! crash-stop scene shows sends to a dead peer failing fast with a
//! delivery-failure exception instead of hanging.
//!
//! Extension experiment **X11** rides in the same binary: a WAN-scale
//! sweep over three switch topologies (single FORE switch, campus
//! fat-tree, mixed DS-3/OC-48 wide-area ring) at 64 application hosts,
//! each at three fault levels (clean / lossy / harsh). The harsh rung
//! adds deterministic link-flap windows on access and trunk links,
//! finite switch output buffers, and seeded VBR cross-traffic from
//! eight extra hosts that contend with the application on the shared
//! links. Every level asserts its invariants (a clean wire retransmits
//! nothing — and spuriously retransmits nothing; damage forces
//! retransmissions but never a delivery failure; reassembly backlogs
//! drain to zero) and the whole sweep lands in
//! `results/BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_chaos [-- --smoke]
//! ```

use bytes::Bytes;
use ncs_apps::fft::{fft_ncs_with, FftConfig};
use ncs_apps::jpeg::EntropyKind;
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{
    ErrorControl, ErrorStats, NcsConfig, NcsWorld, RtoConfig, ThreadAddr, EXC_DELIVERY_FAILED,
};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::{
    spawn_vbr, ChaosNet, ChaosParams, ChaosTopology, Fabric, FaultStatsSnapshot, HostParams,
    Network, NodeId, TcpNet, TcpParams, VbrConfig,
};
use ncs_sim::{Dur, Sim, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// One rung of the damage ladder.
struct Level {
    label: &'static str,
    /// Per-cell bit-flip probability.
    p_corrupt: f64,
    /// Per-cell loss probability.
    p_loss: f64,
    /// Schedule one outage window on the host's uplink.
    flap: bool,
    /// Cap the switch output ports (cells); `None` = lossless switch.
    output_buffer: Option<usize>,
}

/// The ladder. The acceptance bar for the fault model is the third rung
/// (corruption ≥ 1e-3 with loss ≥ 1e-2); the fourth adds a link flap and a
/// finite switch buffer on top.
const LEVELS: &[Level] = &[
    Level {
        label: "clean",
        p_corrupt: 0.0,
        p_loss: 0.0,
        flap: false,
        output_buffer: None,
    },
    Level {
        label: "corrupt 1e-3",
        p_corrupt: 1e-3,
        p_loss: 0.0,
        flap: false,
        output_buffer: None,
    },
    Level {
        label: "corrupt 1e-3 + loss 1e-2",
        p_corrupt: 1e-3,
        p_loss: 1e-2,
        flap: false,
        output_buffer: None,
    },
    Level {
        label: "above + flap + 256-cell switch buffer",
        p_corrupt: 2e-3,
        p_loss: 1e-2,
        flap: true,
        output_buffer: Some(256),
    },
];

/// Host uplink outage window for flap levels: long enough (5 ms) to eat
/// several in-flight chunks, early enough that every app still has traffic
/// on the wire.
const FLAP_DOWN: SimTime = SimTime::from_ps(1_000_000_000); // 1 ms
const FLAP_UP: SimTime = SimTime::from_ps(6_000_000_000); // 6 ms

/// NCS configuration for every run: checksum/retransmit error control with
/// an adaptive RTO seeded at 10 ms. The retry budget must cover the worst
/// rung: an 8 KB message is ~172 cells, and at corrupt 2e-3 + loss 1e-2 a
/// transmission survives with p ≈ 0.13, so 64 tries push the spurious
/// give-up probability below 1e-3 per message.
fn chaos_cfg() -> NcsConfig {
    NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(10)),
        max_retries: 64,
        ..NcsConfig::default()
    }
}

/// A fresh FORE-LAN TCP stack of `nodes` hosts wrapped in the cell-level
/// fault model. Returns the fabric (for flap scheduling and loss counters)
/// and the chaos decorator (for damage stats) alongside the `dyn Network`
/// handle the apps consume.
fn chaos_stack(
    nodes: usize,
    level: &Level,
    seed: u64,
) -> (Arc<AtmLanFabric>, Arc<ChaosNet>, Arc<dyn Network>) {
    let mut params = AtmLanParams::fore_lan(nodes);
    if let Some(cells) = level.output_buffer {
        params = params.with_output_buffer(cells);
    }
    let fabric = Arc::new(AtmLanFabric::new(params));
    if level.flap {
        // One crash of the host's uplink: data (and the B/image/sample
        // fan-out) dies mid-flight; retransmission must carry it across.
        fabric.uplink(NodeId(0)).schedule_flap(FLAP_DOWN, FLAP_UP);
    }
    let tcp: Arc<dyn Network> = Arc::new(TcpNet::new(
        Arc::clone(&fabric),
        vec![HostParams::sparc_ipx(); nodes],
        TcpParams::ip_over_atm(),
    ));
    let chaos = ChaosNet::new(tcp, ChaosParams::new(level.p_corrupt, level.p_loss, seed));
    let net: Arc<dyn Network> = Arc::clone(&chaos) as Arc<dyn Network>;
    (fabric, chaos, net)
}

/// Outcome of one application run at one fault level.
struct AppOutcome {
    app: &'static str,
    elapsed: Dur,
    verified: bool,
    damage: FaultStatsSnapshot,
    overflow_drops: u64,
    flap_losses: u64,
}

fn print_outcome(o: &AppOutcome) {
    println!(
        "  {:6} | {:9.3}s | {:9} | {:5} corrupt {:5} lost | {:4} HEC-fixed {:4} PDU-rej | {:4} dropped | {:3} ovfl {:3} flap",
        o.app,
        o.elapsed.as_secs_f64(),
        if o.verified { "BIT-EXACT" } else { "WRONG" },
        o.damage.cells_corrupted,
        o.damage.cells_lost,
        o.damage.headers_corrected,
        o.damage.pdus_rejected,
        o.damage.messages_dropped,
        o.overflow_drops,
        o.flap_losses,
    );
}

fn run_matmul(level: &Level, seed: u64) -> AppOutcome {
    let sim = Sim::new();
    let (fabric, chaos, net) = chaos_stack(3, level, seed);
    let cfg = MatmulConfig {
        dim: 32,
        nodes: 2,
        seed: 7,
    };
    let handle = setup_matmul_ncs_with(&sim, net, cfg, chaos_cfg());
    let out = sim.run();
    out.assert_clean();
    AppOutcome {
        app: "matmul",
        elapsed: out.end_time.since(SimTime::ZERO),
        verified: handle.verify(),
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drops(),
        flap_losses: fabric.flap_losses(),
    }
}

fn run_jpeg(level: &Level, seed: u64) -> AppOutcome {
    let sim = Sim::new();
    let (fabric, chaos, net) = chaos_stack(3, level, seed);
    let cfg = JpegConfig {
        width: 64,
        height: 64,
        quality: 75,
        entropy: EntropyKind::RleVarint,
        nodes: 2,
        seed: 21,
    };
    let handle = setup_jpeg_ncs_with(&sim, net, cfg, chaos_cfg());
    let out = sim.run();
    out.assert_clean();
    AppOutcome {
        app: "jpeg",
        elapsed: out.end_time.since(SimTime::ZERO),
        verified: handle.verify(),
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drops(),
        flap_losses: fabric.flap_losses(),
    }
}

fn run_fft(level: &Level, seed: u64) -> AppOutcome {
    let (fabric, chaos, net) = chaos_stack(3, level, seed);
    let cfg = FftConfig {
        m: 64,
        sets: 2,
        nodes: 2,
        seed: 5,
    };
    let run = fft_ncs_with(net, cfg, chaos_cfg());
    AppOutcome {
        app: "fft",
        elapsed: run.elapsed,
        verified: run.verified,
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drops(),
        flap_losses: fabric.flap_losses(),
    }
}

/// Transport microscope: one producer streams tagged, content-checked
/// messages at one consumer over the same damaged stack, and the error
/// control's own counters (retransmits, backoffs, Karn-filtered RTT
/// samples, RTO trajectory) are read back from the sending process.
const SCOPE_MSGS: u32 = 128;
const SCOPE_BYTES: usize = 4 * 1024;

fn run_microscope(level: &Level, seed: u64) -> (ErrorStats, FaultStatsSnapshot, u64) {
    let sim = Sim::new();
    let (fabric, chaos, net) = chaos_stack(2, level, seed);
    let world = NcsWorld::launch(&sim, vec![net], 2, chaos_cfg(), |id, proc_| {
        if id == 0 {
            proc_.t_create("producer", 5, |ncs| {
                for i in 0..SCOPE_MSGS {
                    ncs.send(
                        ThreadAddr::new(1, 0),
                        i,
                        Bytes::from(vec![(i % 251) as u8; SCOPE_BYTES]),
                    );
                }
            });
        } else {
            proc_.t_create("consumer", 5, |ncs| {
                for i in 0..SCOPE_MSGS {
                    let m = ncs.recv(Some(0), None, Some(i));
                    // Bit-exactness at the transport granularity: payload
                    // must survive corruption, loss and replay unaltered.
                    assert_eq!(m.data.len(), SCOPE_BYTES, "tag {i}");
                    assert!(
                        m.data.iter().all(|&b| b == (i % 251) as u8),
                        "payload damaged at tag {i}"
                    );
                }
            });
        }
    });
    let out = sim.run();
    out.assert_clean();
    let stats = world.procs()[0].error_stats();
    (stats, chaos.stats().snapshot(), fabric.flap_losses())
}

fn print_microscope(stats: &ErrorStats) {
    print!(
        "  stream | {:3} retx {:3} backoffs {:4} rtt samples {:3} dup-suppressed |",
        stats.retransmits, stats.backoff_events, stats.rtt_samples, stats.duplicates_suppressed,
    );
    for p in &stats.peers {
        print!(
            " peer {}: srtt {:.2}ms rto {:.2}ms",
            p.peer,
            p.srtt.as_secs_f64() * 1e3,
            p.rto.as_secs_f64() * 1e3,
        );
    }
    println!();
}

/// Crash-stop scene: peer 1 is dead from the start; the first send burns
/// its retry budget and raises a delivery-failure exception, marking the
/// peer dead so the second send fails fast instead of hanging.
fn run_crash_stop() {
    println!("## crash-stop: sends to a dead peer fail fast\n");
    let sim = Sim::new();
    let level = Level {
        label: "crash",
        p_corrupt: 0.0,
        p_loss: 0.0,
        flap: false,
        output_buffer: None,
    };
    let (_fabric, chaos, net) = chaos_stack(2, &level, 0xDEAD);
    chaos.crash_at(NodeId(1), SimTime::ZERO);
    let cfg = NcsConfig {
        max_retries: 5,
        ..chaos_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"into the void"));
                // Sleep past the whole backed-off retry schedule
                // (10 + 20 + 40 + 80 + 160 + 320 ms) so the budget is gone.
                ncs.ctx().sleep(Dur::from_secs(2));
                ncs.send(ThreadAddr::new(1, 0), 2, Bytes::from_static(b"fails fast"));
            });
        }
    });
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    let proc0 = &world.procs()[0];
    let stats = proc0.error_stats();
    let exceptions = proc0.pending_exceptions();
    assert!(proc0.is_peer_dead(1), "retry exhaustion must mark the peer dead");
    assert_eq!(
        exceptions.len(),
        2,
        "one give-up exception + one fail-fast exception: {exceptions:?}"
    );
    assert!(exceptions.iter().all(|e| e.code == EXC_DELIVERY_FAILED));
    assert!(
        chaos.stats().snapshot().crash_drops > 0,
        "the crashed endpoint must have eaten traffic"
    );
    println!(
        "  peer 1 dead after {} retransmits ({} backoffs); {} delivery-failure \
         exceptions raised (give-up + fail-fast), {} messages eaten by the crash",
        stats.retransmits,
        stats.backoff_events,
        exceptions.len(),
        chaos.stats().snapshot().crash_drops,
    );
    sim.finish();
}

// ---------------------------------------------------------------------------
// X11: the WAN-scale sweep — topology × fault level at 64 hosts.
// ---------------------------------------------------------------------------

/// One rung of the sweep's fault axis.
struct SweepLevel {
    label: &'static str,
    /// Per-cell bit-flip probability.
    p_corrupt: f64,
    /// Per-cell loss probability.
    p_loss: f64,
    /// Deterministic outage windows on two access links and (where the
    /// topology has one) the first trunk.
    flaps: bool,
    /// Seeded VBR cross-traffic from the extra hosts.
    vbr: bool,
    /// Finite per-switch output buffer (cells); `None` = lossless switch.
    output_buffer: Option<usize>,
}

/// Clean / lossy / harsh. Loss rates are per *cell*; a 4 KB message is
/// ~90 cells, so harsh (5e-3) rejects roughly one in three CS-PDUs and
/// retransmission is constantly at work.
const SWEEP_LEVELS: &[SweepLevel] = &[
    SweepLevel {
        label: "clean",
        p_corrupt: 0.0,
        p_loss: 0.0,
        flaps: false,
        vbr: false,
        output_buffer: None,
    },
    SweepLevel {
        label: "lossy",
        p_corrupt: 1e-4,
        p_loss: 2e-3,
        flaps: false,
        vbr: false,
        output_buffer: None,
    },
    SweepLevel {
        label: "harsh",
        p_corrupt: 5e-4,
        p_loss: 5e-3,
        flaps: true,
        vbr: true,
        output_buffer: Some(4096),
    },
];

/// Flap windows for the harsh rung. Early enough that every host still
/// has ring traffic on the wire, short enough (≪ the 160 ms pre-sample
/// RTO) that retransmission carries the losses and nobody is declared
/// partitioned — the sweep tests degradation, not fail-fast (the
/// dedicated recovery tests cover that).
const SWEEP_FLAPS: &[(SimTime, SimTime)] = &[
    (SimTime::from_ps(1_000_000_000), SimTime::from_ps(6_000_000_000)), // 1–6 ms
    (SimTime::from_ps(3_000_000_000), SimTime::from_ps(8_000_000_000)), // 3–8 ms
    (SimTime::from_ps(9_000_000_000), SimTime::from_ps(13_000_000_000)), // 9–13 ms
];

/// Deterministic payload byte for (sender, tag, offset): the receiver
/// recomputes it, so bit-exactness is checked on every delivered byte.
fn fill_byte(src: usize, tag: u32, j: usize) -> u8 {
    (src as u32)
        .wrapping_mul(131)
        .wrapping_add(tag.wrapping_mul(17))
        .wrapping_add(j as u32) as u8
}

/// Everything one (topology, level) cell of the sweep leaves behind.
struct MeshOutcome {
    topo: ChaosTopology,
    level: &'static str,
    /// Virtual instant the last application thread finished (the VBR
    /// horizon may keep the simulator itself running longer).
    app_done: Dur,
    /// Application payload bytes delivered (hosts × msgs × msg_bytes).
    payload_bytes: u64,
    /// p99 end-to-end message latency from the `obs.e2e` histogram
    /// (conservative upper bound).
    p99: Dur,
    retransmits: u64,
    spurious: u64,
    backoffs: u64,
    deferred: u64,
    failures: u64,
    reclaimed: u64,
    backlog: usize,
    damage: FaultStatsSnapshot,
    overflow_drops: u64,
    flap_losses: u64,
    vbr_bytes: u64,
    vbr_chunks: u64,
}

impl MeshOutcome {
    fn goodput_mbps(&self) -> f64 {
        self.payload_bytes as f64 * 8.0 / self.app_done.as_secs_f64() / 1e6
    }
}

/// One sweep cell: `hosts` application processes in a ring (each sends
/// `msgs` tagged messages to its right neighbour and receives, verifying
/// every byte, from its left), over `topo` built with `extras` additional
/// cross-traffic hosts, damaged per `level`.
fn run_mesh(
    topo: ChaosTopology,
    level: &SweepLevel,
    hosts: usize,
    extras: usize,
    msgs: u32,
    msg_bytes: usize,
    seed: u64,
) -> MeshOutcome {
    let sim = Sim::new();
    let (fabric, raw) = topo.build_chaos(hosts, extras, level.output_buffer);
    let chaos = ChaosNet::new(raw, ChaosParams::new(level.p_corrupt, level.p_loss, seed));
    let net: Arc<dyn Network> = Arc::clone(&chaos) as Arc<dyn Network>;

    if level.flaps {
        // Two access links and, where the topology has one, a trunk: the
        // multi-switch arms lose whole route bundles, the LAN only the
        // per-host edges.
        fabric
            .uplink_of(NodeId(1))
            .schedule_flap(SWEEP_FLAPS[0].0, SWEEP_FLAPS[0].1);
        fabric
            .downlink_of(NodeId(2))
            .schedule_flap(SWEEP_FLAPS[1].0, SWEEP_FLAPS[1].1);
        if let Some(trunk) = fabric.trunk_links().first() {
            trunk.schedule_flap(SWEEP_FLAPS[2].0, SWEEP_FLAPS[2].1);
        }
    }

    let vbr_handles: Vec<_> = if level.vbr {
        (0..extras)
            .map(|i| {
                // Each extra host streams at a distant application host:
                // the flows cross the trunks and contend with the ring
                // traffic on shared switch ports.
                spawn_vbr(
                    &sim,
                    Arc::clone(&fabric) as Arc<dyn Fabric>,
                    VbrConfig {
                        src: NodeId((hosts + i) as u32),
                        dst: NodeId(((i * 11 + 3) % hosts) as u32),
                        chunk_bytes: 4096,
                        mean_on: Dur::from_millis(1),
                        mean_off: Dur::from_millis(3),
                        horizon: Dur::from_millis(250),
                        seed: seed.wrapping_mul(31).wrapping_add(i as u64),
                    },
                )
            })
            .collect()
    } else {
        Vec::new()
    };

    let app_done = Arc::new(Mutex::new(SimTime::ZERO));
    let done_in = Arc::clone(&app_done);
    let world = NcsWorld::launch(&sim, vec![net], hosts, chaos_cfg(), move |id, proc_| {
        let done = Arc::clone(&done_in);
        proc_.t_create("ring", 5, move |ncs| {
            let right = (id + 1) % hosts;
            let left = (id + hosts - 1) % hosts;
            for i in 0..msgs {
                let payload: Vec<u8> = (0..msg_bytes).map(|j| fill_byte(id, i, j)).collect();
                ncs.send(ThreadAddr::new(right, 0), i, Bytes::from(payload));
                let m = ncs.recv(Some(left), None, Some(i));
                assert_eq!(m.data.len(), msg_bytes, "proc {id} tag {i}");
                for (j, &b) in m.data.iter().enumerate() {
                    assert_eq!(
                        b,
                        fill_byte(left, i, j),
                        "proc {id} tag {i}: byte {j} damaged in flight"
                    );
                }
            }
            let now = ncs.ctx().now();
            let mut d = done.lock();
            if now > *d {
                *d = now;
            }
        });
    });

    let out = sim.run();
    out.assert_clean();

    let mut o = MeshOutcome {
        topo,
        level: level.label,
        app_done: app_done.lock().since(SimTime::ZERO),
        payload_bytes: hosts as u64 * msgs as u64 * msg_bytes as u64,
        p99: sim.with_metrics(|m| {
            m.stat("obs.e2e")
                .and_then(|st| st.hist().quantile(0.99))
                .unwrap_or(Dur::ZERO)
        }),
        retransmits: 0,
        spurious: 0,
        backoffs: 0,
        deferred: 0,
        failures: 0,
        reclaimed: 0,
        backlog: 0,
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drop_count(),
        flap_losses: fabric.flap_loss_count(),
        vbr_bytes: vbr_handles.iter().map(|h| h.bytes_offered()).sum(),
        vbr_chunks: vbr_handles.iter().map(|h| h.chunks_offered()).sum(),
    };
    for p in world.procs() {
        let st = p.error_stats();
        o.retransmits += st.retransmits;
        o.spurious += st.spurious_retransmits;
        o.backoffs += st.backoff_events;
        o.deferred += st.retx_deferred;
        o.failures += st.delivery_failures;
        o.reclaimed += st.reassembly_reclaimed;
        o.backlog += p.reassembly_backlog();
        assert!(
            st.dead_peers.is_empty(),
            "{}/{}: no peer may be declared dead ({:?})",
            topo.id(),
            level.label,
            st.dead_peers
        );
    }
    sim.finish();
    o
}

fn check_mesh_invariants(o: &MeshOutcome) {
    let at = format!("{}/{}", o.topo.id(), o.level);
    assert_eq!(o.failures, 0, "{at}: degradation must stay graceful — no delivery failures");
    assert_eq!(
        o.backlog, 0,
        "{at}: every reassembly buffer must drain (bounded memory)"
    );
    if o.level == "clean" {
        assert_eq!(o.retransmits, 0, "{at}: a clean wire must need no retransmissions");
        assert_eq!(o.spurious, 0, "{at}: a clean wire must see no spurious retransmissions");
    } else {
        assert!(
            o.retransmits > 0,
            "{at}: damage ({} cells lost, {} corrupted, {} flap losses, {} overflow drops) \
             must force retransmissions",
            o.damage.cells_lost,
            o.damage.cells_corrupted,
            o.flap_losses,
            o.overflow_drops
        );
    }
    if o.level == "harsh" {
        assert!(
            o.flap_losses > 0,
            "{at}: the scheduled outage windows must eat in-flight cells"
        );
        assert!(o.vbr_chunks > 0, "{at}: cross-traffic must actually flow");
    }
}

fn print_mesh(o: &MeshOutcome) {
    println!(
        "  {:9} | {:5} | {:9.4}s | {:8.2} Mb/s | p99 {:9.3}ms | {:5} retx {:3} spur {:4} back {:3} defer | {:5} lost {:4} corrupt | {:4} ovfl {:4} flap | {:6.2} MB vbr",
        o.topo.id(),
        o.level,
        o.app_done.as_secs_f64(),
        o.goodput_mbps(),
        o.p99.as_secs_f64() * 1e3,
        o.retransmits,
        o.spurious,
        o.backoffs,
        o.deferred,
        o.damage.cells_lost,
        o.damage.cells_corrupted,
        o.overflow_drops,
        o.flap_losses,
        o.vbr_bytes as f64 / 1e6,
    );
}

fn mesh_json(o: &MeshOutcome) -> String {
    format!(
        "{{\"topology\": \"{}\", \"level\": \"{}\", \"app_done_s\": {:.9}, \
         \"goodput_mbps\": {:.3}, \"p99_ms\": {:.6}, \"payload_bytes\": {}, \
         \"retransmits\": {}, \"spurious_retransmits\": {}, \"backoffs\": {}, \
         \"retx_deferred\": {}, \"delivery_failures\": {}, \
         \"reassembly_reclaimed\": {}, \"reassembly_backlog\": {}, \
         \"cells_lost\": {}, \"cells_corrupted\": {}, \"headers_corrected\": {}, \
         \"pdus_rejected\": {}, \"overflow_drops\": {}, \"flap_losses\": {}, \
         \"vbr_bytes\": {}, \"vbr_chunks\": {}}}",
        o.topo.id(),
        o.level,
        o.app_done.as_secs_f64(),
        o.goodput_mbps(),
        o.p99.as_secs_f64() * 1e3,
        o.payload_bytes,
        o.retransmits,
        o.spurious,
        o.backoffs,
        o.deferred,
        o.failures,
        o.reclaimed,
        o.backlog,
        o.damage.cells_lost,
        o.damage.cells_corrupted,
        o.damage.headers_corrected,
        o.damage.pdus_rejected,
        o.overflow_drops,
        o.flap_losses,
        o.vbr_bytes,
        o.vbr_chunks,
    )
}

fn run_sweep(smoke: bool) -> Vec<MeshOutcome> {
    let (hosts, extras, msgs, msg_bytes) = if smoke {
        (16, 4, 8, 4096)
    } else {
        (64, 8, 16, 4096)
    };
    println!(
        "## X11 — WAN-scale sweep: {hosts} app hosts + {extras} cross-traffic, \
         ring of {msgs} x {msg_bytes} B messages\n"
    );
    let mut outcomes = Vec::new();
    for topo in ChaosTopology::all() {
        for (li, level) in SWEEP_LEVELS.iter().enumerate() {
            let seed = 0xA7A7_0000 + li as u64 * 131 + topo.id().len() as u64;
            let o = run_mesh(topo, level, hosts, extras, msgs, msg_bytes, seed);
            print_mesh(&o);
            check_mesh_invariants(&o);
            outcomes.push(o);
        }
        println!();
    }
    let mut json = String::from("{\n  \"experiment\": \"xp_chaos\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"hosts\": {hosts}, \"extra_hosts\": {extras}, \
         \"msgs_per_host\": {msgs}, \"msg_bytes\": {msg_bytes},\n"
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&mesh_json(o));
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote results/BENCH_chaos.json\n");
    outcomes
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# X7 — chaos sweep: cell-level faults vs NCS error control");
    if smoke {
        println!("# smoke mode: reduced sweep");
    }
    println!("# FORE ATM LAN stack; matmul 32x32/2 nodes, JPEG 64x64/2 nodes, FFT 512pt-class 64pt/2 sets/2 nodes");
    println!(
        "# microscope: {} x {} KB producer->consumer stream\n",
        SCOPE_MSGS,
        SCOPE_BYTES / 1024
    );

    let mut clean_elapsed = Dur::ZERO;
    let mut harsh_retx = 0u64;
    for (li, level) in LEVELS.iter().enumerate() {
        println!("## level {li}: {}", level.label);
        let seed = 0xC0FFEE + li as u64 * 97;
        let outcomes = [
            run_matmul(level, seed),
            run_jpeg(level, seed + 1),
            run_fft(level, seed + 2),
        ];
        for o in &outcomes {
            print_outcome(o);
            assert!(
                o.verified,
                "{} must be bit-exact at fault level '{}'",
                o.app, level.label
            );
        }
        let (stats, damage, flap) = run_microscope(level, seed + 3);
        print_microscope(&stats);
        assert!(
            stats.rtt_samples > 0,
            "the estimator must see clean samples at level '{}'",
            level.label
        );
        assert!(stats.delivery_failures == 0 && stats.dead_peers.is_empty());
        if level.p_corrupt == 0.0 && level.p_loss == 0.0 && !level.flap {
            clean_elapsed = outcomes[0].elapsed;
            assert_eq!(
                stats.retransmits, 0,
                "a clean wire must need no retransmissions"
            );
        } else {
            assert!(
                stats.retransmits > 0,
                "damage at level '{}' must force retransmissions \
                 ({} cells corrupted, {} lost, {} flap losses)",
                level.label,
                damage.cells_corrupted,
                damage.cells_lost,
                flap
            );
            harsh_retx += stats.retransmits;
        }
        if level.flap {
            assert!(
                flap > 0,
                "a 5 ms outage under a continuous stream must eat chunks"
            );
        }
        println!();
    }
    assert!(harsh_retx > 0);

    run_crash_stop();
    println!();

    let outcomes = run_sweep(smoke);
    let harsh_total: u64 = outcomes
        .iter()
        .filter(|o| o.level == "harsh")
        .map(|o| o.retransmits)
        .sum();
    assert!(harsh_total > 0);

    println!(
        "(every app run at every fault level verified bit-exact; recovery is \
         paid for in time — matmul clean: {:.3}s — and in the retransmission \
         counters above, with the RTO tracking each peer's observed RTT)",
        clean_elapsed.as_secs_f64()
    );
}
