//! Extension experiment **X7**: chaos sweep — the fault model meets the
//! applications.
//!
//! The paper's testbed was a real FORE ATM LAN, where cells really do get
//! damaged: single-bit header errors (corrected by HEC), payload damage
//! (rejected by the AAL5 CRC-32), cells lost to switch output-buffer
//! overflow, and links that flap. This harness injects all of those with
//! [`ncs_net::ChaosNet`] plus the fabric's own flap/overflow machinery and
//! reruns the paper's three applications — matmul (Table 1), the JPEG
//! pipeline (Table 2) and the FFT (Table 3) — under escalating damage.
//!
//! The claim under test: NCS error control (checksum + retransmit with an
//! adaptive, Jacobson-style RTO) delivers **bit-exact** application results
//! at every fault level, at a visible cost in elapsed time and
//! retransmissions. A transport microscope (one producer/consumer pair)
//! reports the retransmit/backoff/RTO numbers per level, and a final
//! crash-stop scene shows sends to a dead peer failing fast with a
//! delivery-failure exception instead of hanging.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_chaos
//! ```

use bytes::Bytes;
use ncs_apps::fft::{fft_ncs_with, FftConfig};
use ncs_apps::jpeg::EntropyKind;
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{
    ErrorControl, ErrorStats, NcsConfig, NcsWorld, RtoConfig, ThreadAddr, EXC_DELIVERY_FAILED,
};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::{
    ChaosNet, ChaosParams, FaultStatsSnapshot, HostParams, Network, NodeId, TcpNet, TcpParams,
};
use ncs_sim::{Dur, Sim, SimTime};
use std::sync::Arc;

/// One rung of the damage ladder.
struct Level {
    label: &'static str,
    /// Per-cell bit-flip probability.
    p_corrupt: f64,
    /// Per-cell loss probability.
    p_loss: f64,
    /// Schedule one outage window on the host's uplink.
    flap: bool,
    /// Cap the switch output ports (cells); `None` = lossless switch.
    output_buffer: Option<usize>,
}

/// The ladder. The acceptance bar for the fault model is the third rung
/// (corruption ≥ 1e-3 with loss ≥ 1e-2); the fourth adds a link flap and a
/// finite switch buffer on top.
const LEVELS: &[Level] = &[
    Level {
        label: "clean",
        p_corrupt: 0.0,
        p_loss: 0.0,
        flap: false,
        output_buffer: None,
    },
    Level {
        label: "corrupt 1e-3",
        p_corrupt: 1e-3,
        p_loss: 0.0,
        flap: false,
        output_buffer: None,
    },
    Level {
        label: "corrupt 1e-3 + loss 1e-2",
        p_corrupt: 1e-3,
        p_loss: 1e-2,
        flap: false,
        output_buffer: None,
    },
    Level {
        label: "above + flap + 256-cell switch buffer",
        p_corrupt: 2e-3,
        p_loss: 1e-2,
        flap: true,
        output_buffer: Some(256),
    },
];

/// Host uplink outage window for flap levels: long enough (5 ms) to eat
/// several in-flight chunks, early enough that every app still has traffic
/// on the wire.
const FLAP_DOWN: SimTime = SimTime::from_ps(1_000_000_000); // 1 ms
const FLAP_UP: SimTime = SimTime::from_ps(6_000_000_000); // 6 ms

/// NCS configuration for every run: checksum/retransmit error control with
/// an adaptive RTO seeded at 10 ms. The retry budget must cover the worst
/// rung: an 8 KB message is ~172 cells, and at corrupt 2e-3 + loss 1e-2 a
/// transmission survives with p ≈ 0.13, so 64 tries push the spurious
/// give-up probability below 1e-3 per message.
fn chaos_cfg() -> NcsConfig {
    NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(10)),
        max_retries: 64,
        ..NcsConfig::default()
    }
}

/// A fresh FORE-LAN TCP stack of `nodes` hosts wrapped in the cell-level
/// fault model. Returns the fabric (for flap scheduling and loss counters)
/// and the chaos decorator (for damage stats) alongside the `dyn Network`
/// handle the apps consume.
fn chaos_stack(
    nodes: usize,
    level: &Level,
    seed: u64,
) -> (Arc<AtmLanFabric>, Arc<ChaosNet>, Arc<dyn Network>) {
    let mut params = AtmLanParams::fore_lan(nodes);
    if let Some(cells) = level.output_buffer {
        params = params.with_output_buffer(cells);
    }
    let fabric = Arc::new(AtmLanFabric::new(params));
    if level.flap {
        // One crash of the host's uplink: data (and the B/image/sample
        // fan-out) dies mid-flight; retransmission must carry it across.
        fabric.uplink(NodeId(0)).schedule_flap(FLAP_DOWN, FLAP_UP);
    }
    let tcp: Arc<dyn Network> = Arc::new(TcpNet::new(
        Arc::clone(&fabric),
        vec![HostParams::sparc_ipx(); nodes],
        TcpParams::ip_over_atm(),
    ));
    let chaos = ChaosNet::new(tcp, ChaosParams::new(level.p_corrupt, level.p_loss, seed));
    let net: Arc<dyn Network> = Arc::clone(&chaos) as Arc<dyn Network>;
    (fabric, chaos, net)
}

/// Outcome of one application run at one fault level.
struct AppOutcome {
    app: &'static str,
    elapsed: Dur,
    verified: bool,
    damage: FaultStatsSnapshot,
    overflow_drops: u64,
    flap_losses: u64,
}

fn print_outcome(o: &AppOutcome) {
    println!(
        "  {:6} | {:9.3}s | {:9} | {:5} corrupt {:5} lost | {:4} HEC-fixed {:4} PDU-rej | {:4} dropped | {:3} ovfl {:3} flap",
        o.app,
        o.elapsed.as_secs_f64(),
        if o.verified { "BIT-EXACT" } else { "WRONG" },
        o.damage.cells_corrupted,
        o.damage.cells_lost,
        o.damage.headers_corrected,
        o.damage.pdus_rejected,
        o.damage.messages_dropped,
        o.overflow_drops,
        o.flap_losses,
    );
}

fn run_matmul(level: &Level, seed: u64) -> AppOutcome {
    let sim = Sim::new();
    let (fabric, chaos, net) = chaos_stack(3, level, seed);
    let cfg = MatmulConfig {
        dim: 32,
        nodes: 2,
        seed: 7,
    };
    let handle = setup_matmul_ncs_with(&sim, net, cfg, chaos_cfg());
    let out = sim.run();
    out.assert_clean();
    AppOutcome {
        app: "matmul",
        elapsed: out.end_time.since(SimTime::ZERO),
        verified: handle.verify(),
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drops(),
        flap_losses: fabric.flap_losses(),
    }
}

fn run_jpeg(level: &Level, seed: u64) -> AppOutcome {
    let sim = Sim::new();
    let (fabric, chaos, net) = chaos_stack(3, level, seed);
    let cfg = JpegConfig {
        width: 64,
        height: 64,
        quality: 75,
        entropy: EntropyKind::RleVarint,
        nodes: 2,
        seed: 21,
    };
    let handle = setup_jpeg_ncs_with(&sim, net, cfg, chaos_cfg());
    let out = sim.run();
    out.assert_clean();
    AppOutcome {
        app: "jpeg",
        elapsed: out.end_time.since(SimTime::ZERO),
        verified: handle.verify(),
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drops(),
        flap_losses: fabric.flap_losses(),
    }
}

fn run_fft(level: &Level, seed: u64) -> AppOutcome {
    let (fabric, chaos, net) = chaos_stack(3, level, seed);
    let cfg = FftConfig {
        m: 64,
        sets: 2,
        nodes: 2,
        seed: 5,
    };
    let run = fft_ncs_with(net, cfg, chaos_cfg());
    AppOutcome {
        app: "fft",
        elapsed: run.elapsed,
        verified: run.verified,
        damage: chaos.stats().snapshot(),
        overflow_drops: fabric.overflow_drops(),
        flap_losses: fabric.flap_losses(),
    }
}

/// Transport microscope: one producer streams tagged, content-checked
/// messages at one consumer over the same damaged stack, and the error
/// control's own counters (retransmits, backoffs, Karn-filtered RTT
/// samples, RTO trajectory) are read back from the sending process.
const SCOPE_MSGS: u32 = 128;
const SCOPE_BYTES: usize = 4 * 1024;

fn run_microscope(level: &Level, seed: u64) -> (ErrorStats, FaultStatsSnapshot, u64) {
    let sim = Sim::new();
    let (fabric, chaos, net) = chaos_stack(2, level, seed);
    let world = NcsWorld::launch(&sim, vec![net], 2, chaos_cfg(), |id, proc_| {
        if id == 0 {
            proc_.t_create("producer", 5, |ncs| {
                for i in 0..SCOPE_MSGS {
                    ncs.send(
                        ThreadAddr::new(1, 0),
                        i,
                        Bytes::from(vec![(i % 251) as u8; SCOPE_BYTES]),
                    );
                }
            });
        } else {
            proc_.t_create("consumer", 5, |ncs| {
                for i in 0..SCOPE_MSGS {
                    let m = ncs.recv(Some(0), None, Some(i));
                    // Bit-exactness at the transport granularity: payload
                    // must survive corruption, loss and replay unaltered.
                    assert_eq!(m.data.len(), SCOPE_BYTES, "tag {i}");
                    assert!(
                        m.data.iter().all(|&b| b == (i % 251) as u8),
                        "payload damaged at tag {i}"
                    );
                }
            });
        }
    });
    let out = sim.run();
    out.assert_clean();
    let stats = world.procs()[0].error_stats();
    (stats, chaos.stats().snapshot(), fabric.flap_losses())
}

fn print_microscope(stats: &ErrorStats) {
    print!(
        "  stream | {:3} retx {:3} backoffs {:4} rtt samples {:3} dup-suppressed |",
        stats.retransmits, stats.backoff_events, stats.rtt_samples, stats.duplicates_suppressed,
    );
    for p in &stats.peers {
        print!(
            " peer {}: srtt {:.2}ms rto {:.2}ms",
            p.peer,
            p.srtt.as_secs_f64() * 1e3,
            p.rto.as_secs_f64() * 1e3,
        );
    }
    println!();
}

/// Crash-stop scene: peer 1 is dead from the start; the first send burns
/// its retry budget and raises a delivery-failure exception, marking the
/// peer dead so the second send fails fast instead of hanging.
fn run_crash_stop() {
    println!("## crash-stop: sends to a dead peer fail fast\n");
    let sim = Sim::new();
    let level = Level {
        label: "crash",
        p_corrupt: 0.0,
        p_loss: 0.0,
        flap: false,
        output_buffer: None,
    };
    let (_fabric, chaos, net) = chaos_stack(2, &level, 0xDEAD);
    chaos.crash_at(NodeId(1), SimTime::ZERO);
    let cfg = NcsConfig {
        max_retries: 5,
        ..chaos_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"into the void"));
                // Sleep past the whole backed-off retry schedule
                // (10 + 20 + 40 + 80 + 160 + 320 ms) so the budget is gone.
                ncs.ctx().sleep(Dur::from_secs(2));
                ncs.send(ThreadAddr::new(1, 0), 2, Bytes::from_static(b"fails fast"));
            });
        }
    });
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    let proc0 = &world.procs()[0];
    let stats = proc0.error_stats();
    let exceptions = proc0.pending_exceptions();
    assert!(proc0.is_peer_dead(1), "retry exhaustion must mark the peer dead");
    assert_eq!(
        exceptions.len(),
        2,
        "one give-up exception + one fail-fast exception: {exceptions:?}"
    );
    assert!(exceptions.iter().all(|e| e.code == EXC_DELIVERY_FAILED));
    assert!(
        chaos.stats().snapshot().crash_drops > 0,
        "the crashed endpoint must have eaten traffic"
    );
    println!(
        "  peer 1 dead after {} retransmits ({} backoffs); {} delivery-failure \
         exceptions raised (give-up + fail-fast), {} messages eaten by the crash",
        stats.retransmits,
        stats.backoff_events,
        exceptions.len(),
        chaos.stats().snapshot().crash_drops,
    );
    sim.finish();
}

fn main() {
    println!("# X7 — chaos sweep: cell-level faults vs NCS error control");
    println!("# FORE ATM LAN stack; matmul 32x32/2 nodes, JPEG 64x64/2 nodes, FFT 512pt-class 64pt/2 sets/2 nodes");
    println!(
        "# microscope: {} x {} KB producer->consumer stream\n",
        SCOPE_MSGS,
        SCOPE_BYTES / 1024
    );

    let mut clean_elapsed = Dur::ZERO;
    let mut harsh_retx = 0u64;
    for (li, level) in LEVELS.iter().enumerate() {
        println!("## level {li}: {}", level.label);
        let seed = 0xC0FFEE + li as u64 * 97;
        let outcomes = [
            run_matmul(level, seed),
            run_jpeg(level, seed + 1),
            run_fft(level, seed + 2),
        ];
        for o in &outcomes {
            print_outcome(o);
            assert!(
                o.verified,
                "{} must be bit-exact at fault level '{}'",
                o.app, level.label
            );
        }
        let (stats, damage, flap) = run_microscope(level, seed + 3);
        print_microscope(&stats);
        assert!(
            stats.rtt_samples > 0,
            "the estimator must see clean samples at level '{}'",
            level.label
        );
        assert!(stats.delivery_failures == 0 && stats.dead_peers.is_empty());
        if level.p_corrupt == 0.0 && level.p_loss == 0.0 && !level.flap {
            clean_elapsed = outcomes[0].elapsed;
            assert_eq!(
                stats.retransmits, 0,
                "a clean wire must need no retransmissions"
            );
        } else {
            assert!(
                stats.retransmits > 0,
                "damage at level '{}' must force retransmissions \
                 ({} cells corrupted, {} lost, {} flap losses)",
                level.label,
                damage.cells_corrupted,
                damage.cells_lost,
                flap
            );
            harsh_retx += stats.retransmits;
        }
        if level.flap {
            assert!(
                flap > 0,
                "a 5 ms outage under a continuous stream must eat chunks"
            );
        }
        println!();
    }
    assert!(harsh_retx > 0);

    run_crash_stop();

    println!(
        "\n(every app run at every fault level verified bit-exact; recovery is \
         paid for in time — matmul clean: {:.3}s — and in the retransmission \
         counters above, with the RTO tracking each peer's observed RTT)",
        clean_elapsed.as_secs_f64()
    );
}
