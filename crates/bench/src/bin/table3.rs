//! Regenerates **Table 3**: execution times of the distributed DIF FFT
//! (M = 512 points, 8 sample sets), p4 vs NCS_MTS/p4, on the Ethernet and
//! NYNET testbeds.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin table3
//! ```

use ncs_apps::fft::{fft_ncs, fft_p4, FftConfig};
use ncs_bench::{paper_table3, Comparison, Row};
use ncs_net::Testbed;

fn measure(testbed: Testbed, nodes_list: &[usize]) -> Vec<Row> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let cfg = FftConfig::paper(nodes);
            let p4 = fft_p4(testbed.build(nodes + 1), cfg);
            let ncs = fft_ncs(testbed.build(nodes + 1), cfg);
            assert!(p4.verified, "p4 spectrum mismatch at {nodes} nodes");
            assert!(ncs.verified, "NCS spectrum mismatch at {nodes} nodes");
            Row {
                nodes,
                p4: p4.elapsed.as_secs_f64(),
                ncs: ncs.elapsed.as_secs_f64(),
            }
        })
        .collect()
}

fn main() {
    println!("# Table 3 — Execution times of FFT (seconds)\n");
    for (label, testbed, nodes) in [
        ("Ethernet", Testbed::SunEthernet, &[1usize, 2, 4, 8][..]),
        ("NYNET", Testbed::NynetTcp, &[1usize, 2, 4][..]),
    ] {
        let cmp = Comparison {
            testbed: label,
            measured: measure(testbed, nodes),
            paper: paper_table3(label),
        };
        println!("{}", cmp.render());
        for v in cmp.shape_violations() {
            println!("SHAPE VIOLATION: {v}");
        }
    }
}
