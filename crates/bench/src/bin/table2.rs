//! Regenerates **Table 2**: total execution times of the JPEG
//! compression/decompression pipeline on a ~600 KB image, p4 vs
//! NCS_MTS/p4, on the Ethernet and NYNET testbeds.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin table2
//! ```

use ncs_apps::jpeg_dist::{jpeg_ncs, jpeg_p4, JpegConfig};
use ncs_bench::{paper_table2, Comparison, Row};
use ncs_net::Testbed;

fn measure(testbed: Testbed, nodes_list: &[usize]) -> Vec<Row> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let cfg = JpegConfig::paper(nodes);
            let p4 = jpeg_p4(testbed.build(nodes + 1), cfg);
            let ncs = jpeg_ncs(testbed.build(nodes + 1), cfg);
            assert!(p4.verified, "p4 output mismatch at {nodes} nodes");
            assert!(ncs.verified, "NCS output mismatch at {nodes} nodes");
            Row {
                nodes,
                p4: p4.elapsed.as_secs_f64(),
                ncs: ncs.elapsed.as_secs_f64(),
            }
        })
        .collect()
}

fn main() {
    println!("# Table 2 — Total execution times of JPEG pipeline (seconds)\n");
    for (label, testbed, nodes) in [
        ("Ethernet", Testbed::SunEthernet, &[2usize, 4, 8][..]),
        ("NYNET", Testbed::NynetTcp, &[2usize, 4][..]),
    ] {
        let cmp = Comparison {
            testbed: label,
            measured: measure(testbed, nodes),
            paper: paper_table2(label),
        };
        println!("{}", cmp.render());
        for v in cmp.shape_violations() {
            println!("SHAPE VIOLATION: {v}");
        }
    }
}
