//! Regenerates **Figures 4 and 16**: the computation/communication overlap
//! timelines. Runs a small matmul (Fig. 4) or JPEG pipeline (Fig. 16) in
//! both variants with span tracing enabled and renders ASCII Gantt charts
//! plus per-actor utilization.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin fig_overlap -- matmul
//! cargo run --release -p ncs-bench --bin fig_overlap -- jpeg
//! ```

use ncs_apps::jpeg_dist::{setup_jpeg_ncs, setup_jpeg_p4, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs, setup_matmul_p4, MatmulConfig};
use ncs_net::Testbed;
use ncs_sim::{Sim, SpanKind};

/// Also dumps the spans as CSV under `results/` when `--csv` is passed.
fn maybe_dump_csv(sim: &Sim, tag: &str) {
    if std::env::args().any(|a| a == "--csv") {
        std::fs::create_dir_all("results").expect("create results/");
        let csv = sim.with_tracer(|tr| ncs_bench::spans_to_csv(tr));
        let path = format!("results/overlap_{tag}.csv");
        std::fs::write(&path, csv).expect("write CSV");
        println!("(spans written to {path})");
    }
}

fn render(sim: &Sim, title: &str) {
    println!("\n### {title}");
    let gantt = sim.with_tracer(|tr| tr.render_gantt(100));
    print!("{gantt}");
    let util = sim.with_tracer(|tr| tr.utilization());
    println!("actor utilization (compute / comm / idle, seconds):");
    for (actor, kinds) in util {
        let g = |k: SpanKind| kinds.get(&k).map_or(0.0, |d| d.as_secs_f64());
        println!(
            "  {:24} {:8.2} / {:8.2} / {:8.2}",
            actor,
            g(SpanKind::Compute),
            g(SpanKind::Comm),
            g(SpanKind::Idle)
        );
    }
}

fn matmul_timelines() {
    println!("# Figure 4 — matmul overlap timeline (2 nodes, NYNET testbed)");
    let cfg = MatmulConfig::paper(2);

    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable());
    let h = setup_matmul_p4(&sim, Testbed::NynetTcp.build(3), cfg);
    let out = sim.run();
    out.assert_clean();
    assert!(h.verify());
    render(
        &sim,
        &format!("p4 (single-threaded), total {}", out.end_time),
    );
    maybe_dump_csv(&sim, "matmul_p4");

    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable());
    let h = setup_matmul_ncs(&sim, Testbed::NynetTcp.build(3), cfg);
    let out = sim.run();
    out.assert_clean();
    assert!(h.verify());
    render(
        &sim,
        &format!(
            "NCS_MTS/p4 (two threads per process), total {}",
            out.end_time
        ),
    );
    maybe_dump_csv(&sim, "matmul_ncs");
}

fn jpeg_timelines() {
    println!("# Figure 16 — JPEG pipeline timeline (4 nodes, Ethernet)");
    let cfg = JpegConfig::paper(4);

    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable());
    let h = setup_jpeg_p4(&sim, Testbed::SunEthernet.build(5), cfg);
    let out = sim.run();
    out.assert_clean();
    assert!(h.verify());
    render(
        &sim,
        &format!("p4 (single-threaded), total {}", out.end_time),
    );
    maybe_dump_csv(&sim, "jpeg_p4");

    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable());
    let h = setup_jpeg_ncs(&sim, Testbed::SunEthernet.build(5), cfg);
    let out = sim.run();
    out.assert_clean();
    assert!(h.verify());
    render(
        &sim,
        &format!(
            "NCS_MTS/p4 (two threads per process), total {}",
            out.end_time
        ),
    );
    maybe_dump_csv(&sim, "jpeg_ncs");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "matmul".into());
    match which.as_str() {
        "matmul" => matmul_timelines(),
        "jpeg" => jpeg_timelines(),
        other => {
            eprintln!("unknown figure '{other}': use 'matmul' or 'jpeg'");
            std::process::exit(2);
        }
    }
}
