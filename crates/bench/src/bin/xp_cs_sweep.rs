//! Extension experiment **X2b**: how the user-level context-switch cost
//! shapes the NCS results — the ablation behind DESIGN.md's "cooperative
//! dispatch with context-switch accounting" choice.
//!
//! Sweeps `MtsConfig::context_switch` and reruns the 2-node matmul: the
//! single-node run isolates pure threading overhead (the paper's 25.77 vs
//! 25.85 s rows), while the 2-node run shows how much switch cost the
//! overlap gain can absorb before NCS loses its edge.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_cs_sweep
//! ```

use ncs_apps::matmul::{matmul_p4, MatmulConfig};
use ncs_mts::MtsConfig;
use ncs_net::Testbed;
use ncs_sim::Dur;

fn main() {
    println!("# X2b — context-switch cost ablation (matmul, Ethernet)\n");
    let cfg1 = MatmulConfig::paper(1);
    let cfg2 = MatmulConfig::paper(2);
    let p4_1 = matmul_p4(Testbed::SunEthernet.build(2), cfg1);
    let p4_2 = matmul_p4(Testbed::SunEthernet.build(3), cfg2);
    println!(
        "p4 baselines: 1 node {:.3}s, 2 nodes {:.3}s\n",
        p4_1.elapsed.as_secs_f64(),
        p4_2.elapsed.as_secs_f64()
    );
    println!("switch cost | NCS 1-node | overhead | NCS 2-node | improvement");
    println!("------------+------------+----------+------------+------------");
    for cs_us in [0u64, 15, 50, 150, 500, 2000] {
        let mts = MtsConfig {
            context_switch: Dur::from_micros(cs_us),
            ..MtsConfig::default()
        };
        let ncs_1 = matmul_ncs_with(Testbed::SunEthernet.build(2), cfg1, mts.clone());
        let ncs_2 = matmul_ncs_with(Testbed::SunEthernet.build(3), cfg2, mts);
        println!(
            "{:9}us | {:9.3}s | {:+7.3}% | {:9.3}s | {:+9.1}%",
            cs_us,
            ncs_1.as_secs_f64(),
            (ncs_1.as_secs_f64() - p4_1.elapsed.as_secs_f64()) / p4_1.elapsed.as_secs_f64() * 100.0,
            ncs_2.as_secs_f64(),
            (p4_2.elapsed.as_secs_f64() - ncs_2.as_secs_f64()) / p4_2.elapsed.as_secs_f64() * 100.0,
        );
    }
    println!("\n(the paper's QuickThreads-era ~15 us switch is effectively free;");
    println!(" even millisecond-class process switches would not erase the");
    println!(" 2-node overlap gain — threading wins by a robust margin)");
}

fn matmul_ncs_with(
    net: std::sync::Arc<dyn ncs_net::Network>,
    cfg: MatmulConfig,
    mts: MtsConfig,
) -> Dur {
    // Route the MTS config through NcsConfig by running the NCS driver
    // with a customized world: reuse the public driver via an env-style
    // shim — the driver takes NcsConfig::default(), so we instead rebuild
    // the same topology with the config override helper below.
    ncs_apps::matmul::matmul_ncs_configured(net, cfg, mts).elapsed
}
