//! Extension experiment **X5**: entropy-stage ablation for the JPEG codec —
//! the byte-aligned RLE/varint coder vs canonical Huffman (T.81's scheme) on
//! the paper's ~600 KB image, across qualities. Less compressed output means
//! less stage-3 traffic in the Table 2 pipeline.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_entropy
//! ```

use ncs_apps::jpeg::{compress_with, decompress, EntropyKind};
use ncs_apps::jpeg_dist::{jpeg_ncs, JpegConfig};
use ncs_apps::workloads::GrayImage;
use ncs_net::Testbed;
use ncs_sim::SimRng;

fn main() {
    let mut rng = SimRng::new(0x1A6);
    let img = GrayImage::synthetic(960, 640, &mut rng);
    println!(
        "# X5 — entropy coder ablation on the {}x{} ({} KB) Table-2 image\n",
        img.width,
        img.height,
        img.len() / 1024
    );
    println!(
        "quality |  RLE bytes | RLE ratio | Huffman bytes | Huff ratio | Huffman gain | PSNR (dB)"
    );
    println!(
        "--------+------------+-----------+---------------+------------+--------------+----------"
    );
    for quality in [25u8, 50, 75, 95] {
        let rle = compress_with(&img, quality, EntropyKind::RleVarint);
        let huf = compress_with(&img, quality, EntropyKind::Huffman);
        let back_r = decompress(&rle).expect("rle decode");
        let back_h = decompress(&huf).expect("huffman decode");
        assert_eq!(back_r, back_h, "entropy stage must not change pixels");
        println!(
            "{:7} | {:10} | {:8.2}:1 | {:13} | {:9.2}:1 | {:11.1}% | {:8.1}",
            quality,
            rle.len(),
            img.len() as f64 / rle.len() as f64,
            huf.len(),
            img.len() as f64 / huf.len() as f64,
            (rle.len() as f64 - huf.len() as f64) / rle.len() as f64 * 100.0,
            back_h.psnr(&img),
        );
        assert!(huf.len() < rle.len(), "Huffman must win at q{quality}");
    }
    println!("\n(identical DCT/quantization, so pixels match exactly; Huffman");
    println!(" trims the stage-3 transfer of the Table-2 pipeline)\n");

    // And in the pipeline itself: the Table-2 NCS configuration at 4 nodes
    // with each entropy stage.
    let rle = jpeg_ncs(Testbed::SunEthernet.build(5), JpegConfig::paper(4));
    let huf = jpeg_ncs(
        Testbed::SunEthernet.build(5),
        JpegConfig::paper(4).with_huffman(),
    );
    assert!(rle.verified && huf.verified);
    println!("Table-2 pipeline, 4 nodes Ethernet, NCS variant:");
    println!(
        "  RLE/varint: {:6.3}s  ({} KB compressed crossed the wire)",
        rle.elapsed.as_secs_f64(),
        rle.compressed_bytes / 1024
    );
    println!(
        "  Huffman:    {:6.3}s  ({} KB compressed crossed the wire)",
        huf.elapsed.as_secs_f64(),
        huf.compressed_bytes / 1024
    );
}
