//! Extension experiment **X8**: the pipelined Approach-2 data path.
//!
//! Three questions about the multiple-I/O-buffer design of the paper's
//! Figure 2, now that large messages stream through a pool of buffer-sized
//! CS-PDUs instead of one monolithic AAL5 PDU:
//!
//! 1. **Event economy** — cell-train delivery schedules one simulator
//!    event per train (timestamps inside a train are derived
//!    arithmetically); per-cell delivery pays one event per 53-byte cell.
//!    A bulk transfer is measured under both [`CellEventMode`]s and the
//!    kernel-events-per-megabyte ratio reported (the acceptance bar is a
//!    ≥2× reduction at 64 KiB and above).
//! 2. **Buffer sweep** — the same bulk transfer with 1, 2, 4 and 8 I/O
//!    buffers in flight: with one buffer every chunk waits out the
//!    acknowledgment round trip; a deeper pool overlaps them.
//! 3. **Applications** — matmul, JPEG and FFT run with buffers small
//!    enough that their real traffic is chunked, with the protocol
//!    invariants armed; results must stay bit-exact.
//!
//! Writes `results/BENCH_pipeline.json`.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_pipeline [-- --smoke]
//! ```

use bytes::Bytes;
use ncs_apps::fft::{fft_ncs_with, FftConfig};
use ncs_apps::jpeg::EntropyKind;
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{ErrorControl, FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::stack::BlockingWait;
use ncs_net::{AtmApiNet, AtmApiParams, CellEventMode, HostParams, Network, NodeId};
use ncs_sim::{AnalysisConfig, Dur, Sim};
use std::sync::Arc;

/// A FORE-LAN High Speed Mode stack (the Approach-2 transport) with the
/// chosen receive-side event granularity.
fn hsm_stack(nodes: usize, cell_events: CellEventMode) -> Arc<dyn Network> {
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
    let hosts = vec![HostParams::sparc_ipx(); nodes];
    let params = AtmApiParams {
        cell_events,
        ..AtmApiParams::default()
    };
    Arc::new(AtmApiNet::new(fabric, hosts, params))
}

/// Raw one-shot transfer at the transport layer: how many simulator events
/// does moving `bytes` from node 0 to node 1 cost? No NCS machinery on
/// top, so the count isolates the data path itself.
fn raw_transfer_events(bytes: usize, mode: CellEventMode) -> u64 {
    let sim = Sim::new();
    let net = hsm_stack(2, mode);
    let tx = Arc::clone(&net);
    let payload = Bytes::from(vec![0x5Au8; bytes]);
    sim.spawn("tx", move |ctx| {
        tx.send(ctx, &BlockingWait, NodeId(0), NodeId(1), 1, payload);
    });
    sim.spawn("rx", move |ctx| {
        let m = net.inbox(NodeId(1)).recv(ctx).unwrap();
        assert_eq!(m.payload.len(), bytes);
    });
    let out = sim.run();
    out.assert_clean();
    out.events
}

/// One rung of the buffer sweep: elapsed time, kernel events and chunk
/// count for an NCS transfer of `bytes` with `io_buffers` in flight.
struct SweepPoint {
    bytes: usize,
    io_buffers: u32,
    elapsed: Dur,
    events: u64,
    chunks: u64,
}

/// Full-path NCS transfer over the HSM stack with the protocol invariants
/// armed; panics on any violation or byte mismatch. Elapsed is the virtual
/// time at which the receiving thread held the reassembled message (the
/// run's `end_time` would instead measure the last chunk's trailing
/// retransmission timer).
fn ncs_transfer(bytes: usize, io_buffers: u32) -> SweepPoint {
    use ncs_sim::SimTime;
    use parking_lot::Mutex;
    let (analysis, sink) = AnalysisConfig::recording();
    let sim = Sim::new();
    let net = hsm_stack(2, CellEventMode::Train);
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::ChecksumRetransmit,
        io_buffers,
        analysis,
        ..NcsConfig::default()
    };
    let payload: Vec<u8> = (0..bytes).map(|i| (i * 131 + 17) as u8).collect();
    let sent = Bytes::from(payload.clone());
    let delivered_at = Arc::new(Mutex::new(SimTime::ZERO));
    let da = Arc::clone(&delivered_at);
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        let sent = sent.clone();
        let expect = payload.clone();
        let da = Arc::clone(&da);
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.send(ThreadAddr::new(1, 0), 1, sent.clone());
            } else {
                let m = ncs.recv(Some(0), None, Some(1));
                assert_eq!(&m.data[..], &expect[..], "transfer mangled bytes");
                *da.lock() = ncs.ctx().now();
            }
        });
    });
    let out = sim.run();
    out.assert_clean();
    let violations = sink.take();
    assert!(violations.is_empty(), "{violations:?}");
    let (_, chunks, _) = world.procs()[0].pipeline_stats();
    let elapsed = delivered_at.lock().since(SimTime::ZERO);
    SweepPoint {
        bytes,
        io_buffers,
        elapsed,
        events: out.events,
        chunks,
    }
}

/// Application outcome with invariants armed and traffic forced through
/// the chunked path (1 KiB I/O buffers).
struct AppPoint {
    app: &'static str,
    elapsed: Dur,
    verified: bool,
}

fn app_cfg(analysis: AnalysisConfig) -> NcsConfig {
    NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::ChecksumRetransmit,
        io_buffer_bytes: 1024,
        analysis,
        ..NcsConfig::default()
    }
}

fn run_apps() -> Vec<AppPoint> {
    let mut points = Vec::new();
    {
        let (analysis, sink) = AnalysisConfig::recording();
        let sim = Sim::new();
        let net = hsm_stack(3, CellEventMode::Train);
        let cfg = MatmulConfig {
            dim: 32,
            nodes: 2,
            seed: 7,
        };
        let handle = setup_matmul_ncs_with(&sim, net, cfg, app_cfg(analysis));
        let out = sim.run();
        out.assert_clean();
        let violations = sink.take();
        assert!(violations.is_empty(), "matmul: {violations:?}");
        points.push(AppPoint {
            app: "matmul",
            elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
            verified: handle.verify(),
        });
    }
    {
        let (analysis, sink) = AnalysisConfig::recording();
        let sim = Sim::new();
        let net = hsm_stack(3, CellEventMode::Train);
        let cfg = JpegConfig {
            width: 64,
            height: 64,
            quality: 75,
            entropy: EntropyKind::RleVarint,
            nodes: 2,
            seed: 21,
        };
        let handle = setup_jpeg_ncs_with(&sim, net, cfg, app_cfg(analysis));
        let out = sim.run();
        out.assert_clean();
        let violations = sink.take();
        assert!(violations.is_empty(), "jpeg: {violations:?}");
        points.push(AppPoint {
            app: "jpeg",
            elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
            verified: handle.verify(),
        });
    }
    {
        let (analysis, sink) = AnalysisConfig::recording();
        let net = hsm_stack(3, CellEventMode::Train);
        let cfg = FftConfig {
            m: 64,
            sets: 1,
            nodes: 2,
            seed: 5,
        };
        let run = fft_ncs_with(net, cfg, app_cfg(analysis));
        let violations = sink.take();
        assert!(violations.is_empty(), "fft: {violations:?}");
        points.push(AppPoint {
            app: "fft",
            elapsed: run.elapsed,
            verified: run.verified,
        });
    }
    points
}

fn per_mb(events: u64, bytes: usize) -> f64 {
    events as f64 / (bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# X8 — pipelined Approach-2 data path (multiple I/O buffers, cell trains)");
    if smoke {
        println!("# smoke mode: reduced sweep");
    }

    // Part 1: event economy, train vs per-cell delivery.
    let sizes: &[usize] = if smoke {
        &[64 * 1024]
    } else {
        &[16 * 1024, 64 * 1024, 256 * 1024]
    };
    println!("\n## kernel events per transfer: cell trains vs per-cell delivery");
    let mut economy = Vec::new();
    for &bytes in sizes {
        let train = raw_transfer_events(bytes, CellEventMode::Train);
        let percell = raw_transfer_events(bytes, CellEventMode::PerCell);
        let reduction = percell as f64 / train as f64;
        println!(
            "  {:4} KiB | train {:6} ev ({:9.0}/MB) | per-cell {:6} ev ({:9.0}/MB) | {:4.1}x",
            bytes / 1024,
            train,
            per_mb(train, bytes),
            percell,
            per_mb(percell, bytes),
            reduction,
        );
        if bytes >= 64 * 1024 {
            assert!(
                train * 2 <= percell,
                "{bytes}-byte transfer: train mode must at least halve kernel events \
                 (train {train}, per-cell {percell})"
            );
        }
        economy.push((bytes, train, percell, reduction));
    }

    // Part 2: I/O-buffer sweep over the full NCS path.
    let buffer_counts: &[u32] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let sweep_sizes: &[usize] = if smoke {
        &[64 * 1024]
    } else {
        &[64 * 1024, 256 * 1024]
    };
    println!("\n## I/O-buffer sweep (NCS over HSM, credit window 4, error control on)");
    let mut sweep = Vec::new();
    for &bytes in sweep_sizes {
        let mut first = None;
        let mut last = None;
        for &bufs in buffer_counts {
            let p = ncs_transfer(bytes, bufs);
            println!(
                "  {:4} KiB x {} buffers | {:9.6}s | {:6} ev | {:2} chunks",
                p.bytes / 1024,
                p.io_buffers,
                p.elapsed.as_secs_f64(),
                p.events,
                p.chunks,
            );
            if bufs == buffer_counts[0] {
                first = Some(p.elapsed);
            }
            last = Some(p.elapsed);
            sweep.push(p);
        }
        let (one, deep) = (first.unwrap(), last.unwrap());
        assert!(
            deep <= one,
            "{bytes}-byte transfer: {} buffers ({deep:?}) must not be slower than 1 ({one:?})",
            buffer_counts.last().unwrap()
        );
    }

    // Part 3: the applications, chunked and armed.
    println!("\n## applications with 1 KiB I/O buffers (chunked traffic, invariants armed)");
    let apps = run_apps();
    for p in &apps {
        println!(
            "  {:6} | {:9.6}s | {}",
            p.app,
            p.elapsed.as_secs_f64(),
            if p.verified { "BIT-EXACT" } else { "WRONG" },
        );
        assert!(p.verified, "{} must stay bit-exact when chunked", p.app);
    }

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n  \"experiment\": \"xp_pipeline\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n  \"event_economy\": [\n"));
    for (i, (bytes, train, percell, reduction)) in economy.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bytes\": {bytes}, \"train_events\": {train}, \"percell_events\": {percell}, \
             \"train_events_per_mb\": {:.1}, \"percell_events_per_mb\": {:.1}, \
             \"reduction\": {reduction:.2}}}{}\n",
            per_mb(*train, *bytes),
            per_mb(*percell, *bytes),
            if i + 1 < economy.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"buffer_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bytes\": {}, \"io_buffers\": {}, \"elapsed_s\": {:.9}, \
             \"events\": {}, \"chunks\": {}}}{}\n",
            p.bytes,
            p.io_buffers,
            p.elapsed.as_secs_f64(),
            p.events,
            p.chunks,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"apps\": [\n");
    for (i, p) in apps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"elapsed_s\": {:.9}, \"verified\": {}}}{}\n",
            p.app,
            p.elapsed.as_secs_f64(),
            p.verified,
            if i + 1 < apps.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("\nwrote results/BENCH_pipeline.json");
}
