//! Extension experiment **X4**: message-size sweep of one-way latency and
//! effective bandwidth across all five testbeds — the classic
//! characterization figure, showing where each wire/stack combination's
//! crossovers fall.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_sweep
//! ```

use bytes::Bytes;
use ncs_net::stack::BlockingWait;
use ncs_net::{Network, NodeId, Testbed};
use ncs_sim::{Dur, Sim, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// One-way delivery time (send entry to picked-up) for one message.
fn one_way(net: Arc<dyn Network>, bytes: usize) -> Dur {
    let sim = Sim::new();
    let out = Arc::new(Mutex::new(Dur::ZERO));
    let n2 = Arc::clone(&net);
    sim.spawn("tx", move |ctx| {
        n2.send(
            ctx,
            &BlockingWait,
            NodeId(0),
            NodeId(1),
            0,
            Bytes::from(vec![0u8; bytes]),
        );
    });
    let o2 = Arc::clone(&out);
    sim.spawn("rx", move |ctx| {
        let m = net.inbox(NodeId(1)).recv(ctx).unwrap();
        ctx.sleep(net.recv_pickup_cost(NodeId(1), m.payload.len()));
        *o2.lock() = ctx.now().since(SimTime::ZERO);
    });
    sim.run().assert_clean();
    let d = *out.lock();
    d
}

fn main() {
    let testbeds = [
        Testbed::SunEthernet,
        Testbed::SunAtmLanTcp,
        Testbed::NynetTcp,
        Testbed::SunAtmLanApi,
        Testbed::NynetApi,
    ];
    println!("# X4 — one-way latency (ms) by message size and testbed\n");
    print!("{:>9}", "size");
    for tb in testbeds {
        print!(" | {:>12}", tb.id());
    }
    println!();
    println!("{}", "-".repeat(9 + testbeds.len() * 15));
    let sizes = [64usize, 1 << 10, 8 << 10, 64 << 10, 512 << 10];
    let mut grid = Vec::new();
    for &size in &sizes {
        print!("{:>8}B", size);
        let mut row = Vec::new();
        for tb in testbeds {
            let d = one_way(tb.build(2), size);
            print!(" | {:>10.3}ms", d.as_secs_f64() * 1e3);
            row.push(d);
        }
        println!();
        grid.push(row);
    }
    println!("\n# effective one-way bandwidth at 512 KB (MB/s)\n");
    for (i, tb) in testbeds.iter().enumerate() {
        let d = grid[sizes.len() - 1][i];
        println!(
            "{:>12}: {:.2} MB/s",
            tb.id(),
            (512 << 10) as f64 / d.as_secs_f64() / 1e6
        );
    }
    // Shape assertions: the HSM stack must dominate its NSM sibling at
    // every size, and ATM must beat Ethernet for bulk.
    for (i, row) in grid.iter().enumerate() {
        assert!(
            row[3] < row[1],
            "HSM !< NSM on ATM LAN at {} bytes",
            sizes[i]
        );
    }
    assert!(grid[4][1] < grid[4][0], "ATM LAN !< Ethernet at 512 KB");
    println!("\n(shape checks passed: HSM < NSM at every size; ATM < Ethernet bulk)");
}
