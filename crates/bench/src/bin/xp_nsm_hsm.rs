//! Extension experiment **X1**: Normal Speed Mode vs High Speed Mode.
//!
//! The paper's second NCS_MPS implementation (over the ATM API) was "not
//! fully operational when this paper is written"; this experiment shows
//! what it buys. Ping-pong latency and one-way streaming bandwidth over the
//! same FORE ATM LAN fabric, once through sockets/TCP/IP (NSM) and once
//! through the mapped-buffer ATM API path (HSM).
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_nsm_hsm
//! ```

use bytes::Bytes;
use ncs_net::stack::BlockingWait;
use ncs_net::{Network, NodeId, Testbed};
use ncs_sim::{Dur, DurHistogram, Sim};
use parking_lot::Mutex;
use std::sync::Arc;

/// Round-trip time for one `bytes`-sized ping-pong.
fn ping_pong(net: Arc<dyn Network>, bytes: usize) -> Dur {
    let sim = Sim::new();
    let rtt = Arc::new(Mutex::new(Dur::ZERO));
    let n0 = Arc::clone(&net);
    let r0 = Arc::clone(&rtt);
    sim.spawn("ping", move |ctx| {
        let t0 = ctx.now();
        n0.send(
            ctx,
            &BlockingWait,
            NodeId(0),
            NodeId(1),
            1,
            Bytes::from(vec![0u8; bytes]),
        );
        let inbox = n0.inbox(NodeId(0));
        let m = inbox.recv(ctx).unwrap();
        ctx.sleep(n0.recv_pickup_cost(NodeId(0), m.payload.len()));
        *r0.lock() = ctx.now().since(t0);
    });
    sim.spawn("pong", move |ctx| {
        let inbox = net.inbox(NodeId(1));
        let m = inbox.recv(ctx).unwrap();
        ctx.sleep(net.recv_pickup_cost(NodeId(1), m.payload.len()));
        net.send(ctx, &BlockingWait, NodeId(1), NodeId(0), 2, m.payload);
    });
    sim.run().assert_clean();
    let d = *rtt.lock();
    d
}

/// One-way bandwidth streaming `count` messages of `bytes`, plus the
/// per-message delivery-latency distribution.
fn stream_bw(net: Arc<dyn Network>, bytes: usize, count: usize) -> (f64, DurHistogram) {
    let sim = Sim::new();
    let done = Arc::new(Mutex::new(Dur::ZERO));
    let hist = Arc::new(Mutex::new(DurHistogram::new()));
    let n0 = Arc::clone(&net);
    sim.spawn("tx", move |ctx| {
        for i in 0..count {
            n0.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                i as u64,
                Bytes::from(vec![0u8; bytes]),
            );
        }
    });
    let d2 = Arc::clone(&done);
    let h2 = Arc::clone(&hist);
    sim.spawn("rx", move |ctx| {
        let inbox = net.inbox(NodeId(1));
        for _ in 0..count {
            let m = inbox.recv(ctx).unwrap();
            ctx.sleep(net.recv_pickup_cost(NodeId(1), m.payload.len()));
            h2.lock().record(ctx.now().since(m.sent_at));
        }
        *d2.lock() = ctx.now().since(ncs_sim::SimTime::ZERO);
    });
    sim.run().assert_clean();
    let total = *done.lock();
    let h = hist.lock().clone();
    ((bytes * count) as f64 / total.as_secs_f64() / 1e6, h)
}

fn main() {
    println!("# X1 — NSM (sockets/TCP/IP) vs HSM (NCS ATM API), same ATM LAN\n");
    println!("## Ping-pong round-trip latency");
    println!("  size   |    NSM (TCP) |  HSM (ATM API) | speedup");
    println!("---------+--------------+----------------+--------");
    for bytes in [64usize, 1 << 10, 8 << 10, 64 << 10] {
        let nsm = ping_pong(Testbed::SunAtmLanTcp.build(2), bytes);
        let hsm = ping_pong(Testbed::SunAtmLanApi.build(2), bytes);
        println!(
            "{:6} B | {:>12} | {:>14} | {:.2}x",
            bytes,
            format!("{nsm}"),
            format!("{hsm}"),
            nsm.as_secs_f64() / hsm.as_secs_f64()
        );
    }
    println!("\n## One-way streaming bandwidth (MB/s, 32 messages)");
    println!("  size   |  NSM (TCP) | HSM (ATM API) | speedup");
    println!("---------+------------+---------------+--------");
    for bytes in [8 << 10, 64 << 10, 256 << 10] {
        let (nsm, _) = stream_bw(Testbed::SunAtmLanTcp.build(2), bytes, 32);
        let (hsm, _) = stream_bw(Testbed::SunAtmLanApi.build(2), bytes, 32);
        println!(
            "{:6} KB | {:10.2} | {:13.2} | {:.2}x",
            bytes / 1024,
            nsm,
            hsm,
            hsm / nsm
        );
    }
    println!("\n## Per-message delivery latency under streaming load (8 KB x 64)");
    let (_, nsm_h) = stream_bw(Testbed::SunAtmLanTcp.build(2), 8 << 10, 64);
    let (_, hsm_h) = stream_bw(Testbed::SunAtmLanApi.build(2), 8 << 10, 64);
    println!("  NSM: {}", nsm_h.report());
    println!("  HSM: {}", hsm_h.report());
    println!("\n(HSM wins on both axes: traps instead of syscalls, 3 instead of");
    println!(" 5 bus accesses per word, no TCP per-packet work, no p4-layer");
    println!(" marshalling, and the Figure-2 buffer pipeline)");
}
