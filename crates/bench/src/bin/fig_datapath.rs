//! Regenerates **Figure 3**: the datapath comparison — five memory-bus
//! accesses per word on the socket/TCP/IP path versus three on the NCS
//! mapped-buffer path — and what that means for copy time and achievable
//! memory-limited bandwidth on the paper's hosts.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin fig_datapath
//! ```

use ncs_net::{DatapathKind, HostParams};

fn main() {
    println!("# Figure 3 — Datapath during communication\n");
    println!(
        "per-word memory-bus accesses: socket/TCP = {}, NCS mapped buffers = {}\n",
        DatapathKind::SocketTcp.accesses_per_word(),
        DatapathKind::NcsMapped.accesses_per_word()
    );
    for host in [HostParams::sparc_ipx(), HostParams::sparc_elc()] {
        println!("## {}", host.name);
        println!("message size |  TCP copy time |  NCS copy time | ratio");
        println!("-------------+----------------+----------------+------");
        for size in [
            1usize << 10,
            4 << 10,
            16 << 10,
            64 << 10,
            256 << 10,
            1 << 20,
        ] {
            let tcp = host.copy_time(size, DatapathKind::SocketTcp);
            let ncs = host.copy_time(size, DatapathKind::NcsMapped);
            println!(
                "{:9} KB | {:>14} | {:>14} | {:.3}",
                size / 1024,
                format!("{tcp}"),
                format!("{ncs}"),
                tcp.as_secs_f64() / ncs.as_secs_f64()
            );
        }
        println!(
            "memory-limited bandwidth: TCP {:.2} MB/s, NCS {:.2} MB/s\n",
            host.datapath_bandwidth(DatapathKind::SocketTcp) / 1e6,
            host.datapath_bandwidth(DatapathKind::NcsMapped) / 1e6
        );
    }
    println!("(the 5:3 access ratio is the paper's Figure 3 argument; the");
    println!(" time ratio equals it exactly because both paths move the");
    println!(" same words over the same bus)");
}
