//! Extension experiment **X3**: flow-control strategy ablation (the
//! Figure-5 QOS argument — different applications want different flow
//! control, selectable at `NCS_init`).
//!
//! A bursty producer streams fixed-size messages at a consumer that
//! drains slowly. With no NCS-level flow control the transport absorbs
//! the burst (deep receiver queue, high memory high-water mark); with
//! credit flow control the producer is paced and the queue stays bounded
//! at the window, trading throughput for bounded buffering.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_flow
//! ```

use bytes::Bytes;
use ncs_core::{FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::Testbed;
use ncs_sim::{Dur, Sim};

const MSGS: u32 = 64;
const MSG_BYTES: usize = 4 * 1024;

struct Outcome {
    elapsed: Dur,
    peak_inbox_depth: usize,
}

fn run(flow: FlowControl) -> Outcome {
    let sim = Sim::new();
    let net = Testbed::SunAtmLanTcp.build(2);
    let cfg = NcsConfig {
        flow,
        ..NcsConfig::default()
    };
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        if id == 0 {
            proc_.t_create("producer", 5, |ncs| {
                for i in 0..MSGS {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![0u8; MSG_BYTES]));
                }
            });
        } else {
            proc_.t_create("consumer", 5, move |ncs| {
                for i in 0..MSGS {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert_eq!(m.data.len(), MSG_BYTES);
                    ncs.compute(2_000_000, "drain"); // 50 ms at 40 MHz
                }
            });
        }
    });
    let out = sim.run();
    out.assert_clean();
    // Peak count of messages buffered in the consumer process awaiting a
    // matching receive.
    let peak = world.procs()[1].peak_buffered();
    Outcome {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        peak_inbox_depth: peak,
    }
}

fn main() {
    println!("# X3 — flow-control ablation: bursty producer vs slow consumer");
    println!(
        "# {} messages x {} KB, consumer drains at 50 ms/message\n",
        MSGS,
        MSG_BYTES / 1024
    );
    println!("flow control      | total time | peak receiver queue (msgs)");
    println!("------------------+------------+---------------------------");
    let mut results = Vec::new();
    for (label, flow) in [
        ("none (transport)", FlowControl::None),
        ("credit, window 4", FlowControl::Credit { window: 4 }),
        ("credit, window 16", FlowControl::Credit { window: 16 }),
    ] {
        let o = run(flow);
        println!(
            "{:17} | {:9.3}s | {}",
            label,
            o.elapsed.as_secs_f64(),
            o.peak_inbox_depth
        );
        results.push(o);
    }
    assert!(
        results[1].peak_inbox_depth < results[0].peak_inbox_depth,
        "credit flow control must bound receiver buffering"
    );
    println!("\n(credit windows bound receiver-side buffering — the QOS knob a");
    println!(" VOD-style consumer needs — at a small cost in elapsed time)");
}
