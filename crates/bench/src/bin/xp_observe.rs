//! Extension experiment **X9**: the observability layer.
//!
//! The paper's Tables 2 and 3 decompose `NCS_send`/`NCS_recv` into their
//! per-layer costs by hand instrumentation. This harness reproduces that
//! breakdown mechanically from the causal timelines the runtime now stamps
//! on every tracked data message:
//!
//! ```text
//! enqueued -> sq_popped -> wire_start -> arrived -> picked
//!          [-> reassembled] -> delivered
//! ```
//!
//! Consecutive stages are contiguous, so the component durations
//! (queue-wait, injection, wire, pickup, reassembly, delivery) sum
//! *exactly* to the observed end-to-end latency — which this harness
//! asserts for every message, on both the monolithic and the chunked
//! (multiple-I/O-buffer) data paths.
//!
//! For each application workload (matmul, JPEG, FFT over the HSM stack)
//! it prints the paper-style latency-decomposition table and writes a
//! Chrome `trace_event` JSON (`results/trace_<app>.json`, loadable in
//! Perfetto / `chrome://tracing`) plus a metrics summary
//! (`results/metrics_<app>.txt`).
//!
//! `--smoke` runs the fixed-seed 4-host matmul twice and fails on any
//! byte difference between the two exported traces: the golden-trace
//! determinism gate for CI.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_observe [-- --smoke]
//! ```

use ncs_apps::fft::{fft_ncs_setup_with, FftConfig};
use ncs_apps::jpeg::EntropyKind;
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{causal_component, ErrorControl, FlowControl, NcsConfig, CAUSAL_STAGES};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::{AtmApiNet, AtmApiParams, HostParams, Network};
use ncs_sim::{chrome_trace_json, AnalysisConfig, Dur, Sim};
use std::sync::Arc;

/// Latency components in walk order (fed by [`causal_component`]).
const COMPONENTS: [&str; 6] = [
    "obs.queue_wait",
    "obs.inject",
    "obs.wire",
    "obs.pickup",
    "obs.reassembly",
    "obs.deliver",
];

fn hsm_stack(nodes: usize) -> Arc<dyn Network> {
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
    let hosts = vec![HostParams::sparc_ipx(); nodes];
    Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()))
}

/// NCS configured like a production HSM deployment; `chunked` shrinks the
/// I/O buffers so application traffic goes through the pipelined path.
fn ncs_cfg(analysis: AnalysisConfig, chunked: bool) -> NcsConfig {
    NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::None,
        io_buffer_bytes: if chunked { 1024 } else { 16 * 1024 },
        analysis,
        ..NcsConfig::default()
    }
}

/// Everything one instrumented workload run leaves behind.
struct Observed {
    name: &'static str,
    elapsed: Dur,
    messages: u64,
    /// `(component, n, total, mean)` rows plus the e2e row.
    rows: Vec<(&'static str, u64, Dur, Dur)>,
    e2e_total: Dur,
    trace_json: String,
    summary: String,
}

/// Runs one named workload under full observability (detail-level tracer,
/// causal timelines) and checks the books: timelines well-ordered, every
/// message's components summing exactly to its end-to-end latency.
fn run_workload(name: &'static str) -> Observed {
    let (analysis, sink) = AnalysisConfig::recording();
    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable_detail());
    let verified = match name {
        "matmul" => {
            let net = hsm_stack(5);
            let cfg = MatmulConfig {
                dim: 32,
                nodes: 4,
                seed: 7,
            };
            let handle = setup_matmul_ncs_with(&sim, net, cfg, ncs_cfg(analysis, false));
            let out = sim.run();
            out.assert_clean();
            handle.verify()
        }
        "jpeg" => {
            let net = hsm_stack(3);
            let cfg = JpegConfig {
                width: 64,
                height: 64,
                quality: 75,
                entropy: EntropyKind::RleVarint,
                nodes: 2,
                seed: 21,
            };
            let handle = setup_jpeg_ncs_with(&sim, net, cfg, ncs_cfg(analysis, true));
            let out = sim.run();
            out.assert_clean();
            handle.verify()
        }
        "fft" => {
            let net = hsm_stack(3);
            let cfg = FftConfig {
                m: 64,
                sets: 1,
                nodes: 2,
                seed: 5,
            };
            let handle = fft_ncs_setup_with(&sim, net, cfg, ncs_cfg(analysis, true));
            let out = sim.run();
            out.assert_clean();
            handle.verify()
        }
        other => panic!("unknown workload {other}"),
    };
    assert!(verified, "{name}: result must verify bit-exact");
    let violations = sink.take();
    assert!(violations.is_empty(), "{name}: {violations:?}");

    let end = sim.now();
    // The books must balance: stage marks well-ordered per the canonical
    // walk, and component diffs summing exactly to end-to-end.
    let (rows, e2e_total, messages) = sim.with_metrics(|m| {
        let errs = m.validate_timelines(&CAUSAL_STAGES);
        assert!(errs.is_empty(), "{name}: disordered timelines: {errs:?}");
        let mut delivered = 0u64;
        for (causal, tl) in m.timelines() {
            let Some(&(last_stage, last_t)) = tl.last() else {
                continue;
            };
            if last_stage != "delivered" {
                continue; // in flight at shutdown (e.g. final signals)
            }
            delivered += 1;
            let first_t = tl.first().expect("non-empty").1;
            let mut sum = Dur::ZERO;
            for w in tl.windows(2) {
                let d = w[1].1.since(w[0].1); // panics if non-monotone
                sum += d;
            }
            assert_eq!(
                sum,
                last_t.since(first_t),
                "{name}: causal {causal}: components must sum to end-to-end"
            );
        }
        let mut rows = Vec::new();
        for comp in COMPONENTS {
            if let Some(st) = m.stat(comp) {
                let s = st.summary();
                rows.push((comp, s.count(), s.total(), s.mean().unwrap_or(Dur::ZERO)));
            }
        }
        let e2e_total = m.stat("obs.e2e").map_or(Dur::ZERO, |st| st.summary().total());
        (rows, e2e_total, delivered)
    });
    assert!(messages > 0, "{name}: no tracked messages delivered");
    // Cross-check: the components of all delivered messages must cover the
    // e2e total exactly (nothing dropped, nothing double-counted).
    let comp_total: Dur = rows.iter().fold(Dur::ZERO, |acc, r| acc + r.2);
    assert_eq!(
        comp_total, e2e_total,
        "{name}: component totals must cover the end-to-end total"
    );

    let trace_json = sim.with_tracer(|tr| sim.with_metrics(|mm| chrome_trace_json(tr, mm)));
    let summary = sim.with_metrics(|m| m.summary());
    Observed {
        name,
        elapsed: end.since(ncs_sim::SimTime::ZERO),
        messages,
        rows,
        e2e_total,
        trace_json,
        summary,
    }
}

fn print_table(o: &Observed) {
    println!(
        "\n## {} — {:.6}s, {} tracked messages",
        o.name,
        o.elapsed.as_secs_f64(),
        o.messages
    );
    println!("  component       |     n |   mean      |  total      | share");
    println!("  ----------------+-------+-------------+-------------+------");
    for &(comp, n, total, mean) in &o.rows {
        let share = if o.e2e_total.is_zero() {
            0.0
        } else {
            100.0 * total.as_ps() as f64 / o.e2e_total.as_ps() as f64
        };
        println!(
            "  {:15} | {:5} | {:>11} | {:>11} | {:4.1}%",
            comp.trim_start_matches("obs."),
            n,
            format!("{mean}"),
            format!("{total}"),
            share,
        );
    }
    println!(
        "  {:15} | {:5} | {:>11} | {:>11} | 100%",
        "end-to-end",
        o.messages,
        "",
        format!("{}", o.e2e_total),
    );
}

fn write_artifacts(o: &Observed) {
    std::fs::create_dir_all("results").expect("create results dir");
    let trace = format!("results/trace_{}.json", o.name);
    std::fs::write(&trace, &o.trace_json).expect("write trace");
    let metrics = format!("results/metrics_{}.txt", o.name);
    std::fs::write(&metrics, &o.summary).expect("write metrics summary");
    println!("  wrote {trace} ({} bytes) and {metrics}", o.trace_json.len());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# X9 — observability: per-layer latency decomposition + Chrome trace");
    let _ = causal_component("delivered"); // the mapping the tables are keyed by

    // Golden-trace determinism: the same fixed-seed 4-host matmul twice,
    // full exported trace byte-identical.
    println!("\n## golden-trace determinism (fixed-seed 4-host matmul, two runs)");
    let a = run_workload("matmul");
    let b = run_workload("matmul");
    assert_eq!(
        a.trace_json, b.trace_json,
        "two fixed-seed runs must export byte-identical traces"
    );
    assert_eq!(a.summary, b.summary, "metrics summaries must match too");
    println!(
        "  OK: {} bytes of trace, byte-identical across runs",
        a.trace_json.len()
    );
    print_table(&a);
    write_artifacts(&a);

    if smoke {
        println!("\nsmoke OK");
        return;
    }

    for name in ["jpeg", "fft"] {
        let o = run_workload(name);
        print_table(&o);
        write_artifacts(&o);
    }
}
