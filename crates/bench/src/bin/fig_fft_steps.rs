//! Regenerates **Figures 19/20**: the FFT mapping's communication
//! structure — `log₂ N` remote exchange steps for p4 versus `log₂ 2N`
//! steps for NCS of which the last is thread-local and never touches the
//! wire. Counts actual messages by running both variants and reading the
//! transport counters.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin fig_fft_steps
//! ```

use ncs_apps::fft::{fft_ncs, fft_p4, FftConfig, FftUnit};
use ncs_net::Testbed;

fn main() {
    println!("# Figures 19/20 — FFT computation/communication structure\n");
    println!("M = 512 points, 1 sample set\n");
    println!("nodes | p4 units | p4 comm steps | NCS units | NCS comm steps | NCS wire steps");
    println!("------+----------+---------------+-----------+----------------+---------------");
    for nodes in [2usize, 4, 8] {
        let p4_units = nodes;
        let ncs_units = 2 * nodes;
        let p4_steps = FftUnit::cross_stages(p4_units);
        let ncs_steps = FftUnit::cross_stages(ncs_units);
        // The final NCS exchange pairs sibling threads (distance 1 unit):
        // it stays inside the process.
        let ncs_wire_steps = ncs_steps - 1;
        println!(
            "{:5} | {:8} | {:13} | {:9} | {:14} | {:14}",
            nodes, p4_units, p4_steps, ncs_units, ncs_steps, ncs_wire_steps
        );
        assert_eq!(p4_steps, (p4_units as f64).log2() as usize);
        assert_eq!(ncs_steps, (ncs_units as f64).log2() as usize);
    }
    println!("\ncomputation steps are log2(M) = 9 in every configuration,");
    println!("matching the paper: p4 has log2(N) communication steps, NCS");
    println!("has log2(2N) of which the last is local among threads.\n");

    // Also demonstrate with a real run that both variants produce verified
    // spectra on a real testbed.
    let cfg = FftConfig {
        m: 512,
        sets: 1,
        nodes: 4,
        seed: 99,
    };
    let p4 = fft_p4(Testbed::SunAtmLanTcp.build(5), cfg);
    let ncs = fft_ncs(Testbed::SunAtmLanTcp.build(5), cfg);
    assert!(p4.verified && ncs.verified);
    println!(
        "verification run (4 nodes, ATM LAN): p4 {:.3}s, NCS {:.3}s, both spectra verified",
        p4.elapsed.as_secs_f64(),
        ncs.elapsed.as_secs_f64()
    );
}
