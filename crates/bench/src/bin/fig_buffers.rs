//! Regenerates **Figure 2**: concurrent data transfer through multiple
//! I/O buffers. Sweeps the number of mapped kernel buffers and the
//! transfer size on the HSM (ATM API) stack and reports one-way delivery
//! latency — buffer count 1 serializes host copy and adapter DMA; 2 or
//! more pipeline them.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin fig_buffers
//! ```

use bytes::Bytes;
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::stack::BlockingWait;
use ncs_net::{AtmApiNet, AtmApiParams, HostParams, Network, NodeId};
use ncs_sim::{Dur, Sim};
use parking_lot::Mutex;
use std::sync::Arc;

fn one_way(num_buffers: usize, bytes: usize) -> Dur {
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(2)));
    let hosts = vec![HostParams::sparc_ipx(); 2];
    let params = AtmApiParams {
        num_buffers,
        ..AtmApiParams::default()
    };
    let net = Arc::new(AtmApiNet::new(fabric, hosts, params));
    let sim = Sim::new();
    let lat = Arc::new(Mutex::new(Dur::ZERO));
    let n2 = Arc::clone(&net);
    sim.spawn("tx", move |ctx| {
        n2.send(
            ctx,
            &BlockingWait,
            NodeId(0),
            NodeId(1),
            0,
            Bytes::from(vec![0u8; bytes]),
        );
    });
    let l2 = Arc::clone(&lat);
    sim.spawn("rx", move |ctx| {
        let m = net.inbox(NodeId(1)).recv(ctx).unwrap();
        ctx.sleep(net.recv_pickup_cost(NodeId(1), m.payload.len()));
        *l2.lock() = ctx.now().since(m.sent_at);
    });
    sim.run().assert_clean();
    let d = *lat.lock();
    d
}

fn main() {
    println!("# Figure 2 — Concurrent data transfers via multiple I/O buffers");
    println!("# (one-way latency, SPARC IPX on the FORE ATM LAN, HSM stack)\n");
    println!("transfer size | 1 buffer | 2 buffers | 4 buffers | 8 buffers | 2-buf speedup");
    println!("--------------+----------+-----------+-----------+-----------+--------------");
    for bytes in [8 << 10, 32 << 10, 128 << 10, 512 << 10] {
        let lats: Vec<Dur> = [1, 2, 4, 8].iter().map(|&n| one_way(n, bytes)).collect();
        println!(
            "{:10} KB | {:>8.2} | {:>9.2} | {:>9.2} | {:>9.2} | {:.2}x",
            bytes / 1024,
            lats[0].as_secs_f64() * 1e3,
            lats[1].as_secs_f64() * 1e3,
            lats[2].as_secs_f64() * 1e3,
            lats[3].as_secs_f64() * 1e3,
            lats[0].as_secs_f64() / lats[1].as_secs_f64(),
        );
    }
    println!("\n(times in milliseconds; the paper's Figure 2 is the 1->2 buffer");
    println!(" transition: host fills buffer k+1 while the SBA-200 drains k)");
}
