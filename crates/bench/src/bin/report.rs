//! Runs every experiment regenerator in sequence and writes each output to
//! `results/<name>.txt` — the one-command path to refreshing every number
//! in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin report
//! ```

use std::path::Path;
use std::process::Command;

const BINS: [&str; 11] = [
    "table1",
    "table2",
    "table3",
    "fig_datapath",
    "fig_buffers",
    "fig_fft_steps",
    "xp_nsm_hsm",
    "xp_flow",
    "xp_cs_sweep",
    "xp_entropy",
    "xp_pvm",
];

fn main() {
    let out_dir = Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in BINS {
        print!("running {bin:>14} … ");
        let output = Command::new(exe_dir.join(bin))
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        let path = out_dir.join(format!("{bin}.txt"));
        std::fs::write(&path, &output.stdout).expect("write result");
        if output.status.success() {
            println!("ok -> {}", path.display());
        } else {
            println!("FAILED (exit {:?})", output.status.code());
            failures.push(bin);
        }
    }
    // The timeline figures need an argument each.
    for fig in ["matmul", "jpeg"] {
        print!("running fig_overlap {fig:>6} … ");
        let output = Command::new(exe_dir.join("fig_overlap"))
            .arg(fig)
            .output()
            .expect("launch fig_overlap");
        let path = out_dir.join(format!("fig_overlap_{fig}.txt"));
        std::fs::write(&path, &output.stdout).expect("write result");
        if output.status.success() {
            println!("ok -> {}", path.display());
        } else {
            println!("FAILED");
            failures.push("fig_overlap");
        }
    }
    // xp_sweep last (it is the slowest).
    print!("running {:>14} … ", "xp_sweep");
    let output = Command::new(exe_dir.join("xp_sweep"))
        .output()
        .expect("launch xp_sweep");
    std::fs::write(out_dir.join("xp_sweep.txt"), &output.stdout).expect("write result");
    if output.status.success() {
        println!("ok -> results/xp_sweep.txt");
    } else {
        println!("FAILED");
        failures.push("xp_sweep");
    }
    assert!(failures.is_empty(), "experiments failed: {failures:?}");
    println!("\nall experiments regenerated under results/");
}
