//! Regenerates **Table 1**: execution times of 128×128 matrix
//! multiplication, p4 vs NCS_MTS/p4, on the Ethernet and NYNET testbeds.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin table1
//! ```

use ncs_apps::matmul::{matmul_ncs, matmul_p4, MatmulConfig};
use ncs_bench::{paper_table1, Comparison, Row};
use ncs_net::Testbed;

fn measure(testbed: Testbed, nodes_list: &[usize]) -> Vec<Row> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let cfg = MatmulConfig::paper(nodes);
            let p4 = matmul_p4(testbed.build(nodes + 1), cfg);
            let ncs = matmul_ncs(testbed.build(nodes + 1), cfg);
            assert!(p4.verified, "p4 result mismatch at {nodes} nodes");
            assert!(ncs.verified, "NCS result mismatch at {nodes} nodes");
            Row {
                nodes,
                p4: p4.elapsed.as_secs_f64(),
                ncs: ncs.elapsed.as_secs_f64(),
            }
        })
        .collect()
}

fn main() {
    println!("# Table 1 — Execution times of Matrix Multiplication (seconds)\n");
    for (label, testbed, nodes) in [
        ("Ethernet", Testbed::SunEthernet, &[1usize, 2, 4, 8][..]),
        ("NYNET", Testbed::NynetTcp, &[1usize, 2, 4][..]),
    ] {
        let cmp = Comparison {
            testbed: label,
            measured: measure(testbed, nodes),
            paper: paper_table1(label),
        };
        println!("{}", cmp.render());
        for v in cmp.shape_violations() {
            println!("SHAPE VIOLATION: {v}");
        }
    }
}
