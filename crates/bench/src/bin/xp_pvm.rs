//! Extension experiment **X6**: the paper's stated work-in-progress —
//! "investigating the performance of NCS_MTS/p4 implementation when p4 is
//! replaced by PVM" (Section 6). Reruns the Table-1 matrix multiplication
//! with the message-passing substrate switched from p4-over-TCP to a
//! PVM-style daemon-routed transport, for both the single-threaded
//! baseline and the multithreaded NCS variant.
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_pvm
//! ```

use ncs_apps::matmul::{matmul_ncs, matmul_p4, MatmulConfig};
use ncs_net::atm::{NynetFabric, NynetParams};
use ncs_net::{HostParams, Network, TcpNet, TcpParams};
use std::sync::Arc;

fn nynet(nodes: usize, params: TcpParams) -> Arc<dyn Network> {
    let fabric = Arc::new(NynetFabric::new(NynetParams::nynet(nodes)));
    let hosts = vec![HostParams::sparc_ipx(); nodes];
    Arc::new(TcpNet::new(fabric, hosts, params))
}

fn main() {
    println!("# X6 — substrate swap: p4-over-TCP vs PVM-style daemon routing");
    println!("# (128x128 matmul on the NYNET testbed)\n");
    println!("nodes | substrate | baseline (1 thread) | NCS_MTS (2 threads) | NCS improvement");
    println!("------+-----------+---------------------+---------------------+----------------");
    for nodes in [2usize, 4] {
        let cfg = MatmulConfig::paper(nodes);
        for (label, params) in [
            ("p4 ", TcpParams::ip_over_atm()),
            ("PVM", TcpParams::pvm_ip_over_atm()),
        ] {
            let base = matmul_p4(nynet(nodes + 1, params.clone()), cfg);
            let ncs = matmul_ncs(nynet(nodes + 1, params), cfg);
            assert!(base.verified && ncs.verified);
            println!(
                "{:5} | {}       | {:18.3}s | {:18.3}s | {:13.1}%",
                nodes,
                label,
                base.elapsed.as_secs_f64(),
                ncs.elapsed.as_secs_f64(),
                (base.elapsed.as_secs_f64() - ncs.elapsed.as_secs_f64())
                    / base.elapsed.as_secs_f64()
                    * 100.0,
            );
        }
    }
    println!("\n(the multithreaded gain survives the substrate swap essentially");
    println!(" intact: PVM's daemon path costs both variants a little time and");
    println!(" its extra CPU-side copying is the one part threads cannot hide —");
    println!(" confirming the paper's expectation that NCS_MTS ports to PVM)");
}
