//! # ncs-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md`'s experiment
//! index). This library holds the shared report formatting: each regenerated
//! table prints measured values side by side with the paper's, plus the
//! derived "% improvement" columns the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One row of a p4-vs-NCS comparison table.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Node count.
    pub nodes: usize,
    /// p4 execution time, seconds.
    pub p4: f64,
    /// NCS_MTS/p4 execution time, seconds.
    pub ncs: f64,
}

impl Row {
    /// The paper's "% improvement": (p4 − ncs) / p4 × 100.
    pub fn improvement(&self) -> f64 {
        (self.p4 - self.ncs) / self.p4 * 100.0
    }
}

/// A reproduced table for one testbed, with the paper's reference values.
pub struct Comparison {
    /// Testbed label (e.g. "Ethernet").
    pub testbed: &'static str,
    /// Measured rows (simulated).
    pub measured: Vec<Row>,
    /// The paper's rows (absent entries mean the paper has no value).
    pub paper: Vec<Row>,
}

impl Comparison {
    /// Renders the comparison as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("## {}\n", self.testbed));
        s.push_str(
            "nodes |   p4 (sim) |  NCS (sim) | impr(sim) |  p4 (paper) | NCS (paper) | impr(paper)\n",
        );
        s.push_str(
            "------+------------+------------+-----------+-------------+-------------+-----------\n",
        );
        for m in &self.measured {
            let paper = self.paper.iter().find(|p| p.nodes == m.nodes);
            let (pp, pn, pi) = match paper {
                Some(p) => (
                    format!("{:11.2}", p.p4),
                    format!("{:11.2}", p.ncs),
                    if p.nodes == 1 {
                        "      -".to_string()
                    } else {
                        format!("{:10.1}%", p.improvement())
                    },
                ),
                None => (
                    "          -".into(),
                    "          -".into(),
                    "         -".into(),
                ),
            };
            let mi = if m.nodes == 1 {
                "        -".to_string()
            } else {
                format!("{:8.1}%", m.improvement())
            };
            s.push_str(&format!(
                "{:5} | {:10.2} | {:10.2} | {} | {} | {} | {}\n",
                m.nodes, m.p4, m.ncs, mi, pp, pn, pi
            ));
        }
        s
    }

    /// Checks the qualitative shape against the paper: NCS wins wherever
    /// the paper says it wins, and single-node threading overhead makes NCS
    /// slightly slower. Returns a list of violations (empty = shape holds).
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for m in &self.measured {
            if m.nodes == 1 {
                if m.ncs < m.p4 {
                    v.push(format!(
                        "{} nodes=1: NCS ({:.2}s) should carry threading overhead over p4 ({:.2}s)",
                        self.testbed, m.ncs, m.p4
                    ));
                }
            } else if m.ncs >= m.p4 {
                v.push(format!(
                    "{} nodes={}: NCS ({:.2}s) did not beat p4 ({:.2}s)",
                    self.testbed, m.nodes, m.p4, m.ncs
                ));
            }
        }
        v
    }
}

/// The paper's Table 1 (matrix multiplication, seconds).
pub fn paper_table1(testbed: &str) -> Vec<Row> {
    match testbed {
        "Ethernet" => vec![
            Row {
                nodes: 1,
                p4: 25.77,
                ncs: 25.85,
            },
            Row {
                nodes: 2,
                p4: 16.89,
                ncs: 13.72,
            },
            Row {
                nodes: 4,
                p4: 10.64,
                ncs: 7.88,
            },
            Row {
                nodes: 8,
                p4: 5.90,
                ncs: 4.62,
            },
        ],
        "NYNET" => vec![
            Row {
                nodes: 1,
                p4: 24.89,
                ncs: 25.03,
            },
            Row {
                nodes: 2,
                p4: 14.40,
                ncs: 11.51,
            },
            Row {
                nodes: 4,
                p4: 7.52,
                ncs: 5.41,
            },
        ],
        _ => Vec::new(),
    }
}

/// The paper's Table 2 (JPEG pipeline, seconds).
pub fn paper_table2(testbed: &str) -> Vec<Row> {
    match testbed {
        "Ethernet" => vec![
            Row {
                nodes: 2,
                p4: 10.721,
                ncs: 9.037,
            },
            Row {
                nodes: 4,
                p4: 15.325,
                ncs: 8.849,
            },
            Row {
                nodes: 8,
                p4: 17.343,
                ncs: 6.541,
            },
        ],
        "NYNET" => vec![
            Row {
                nodes: 2,
                p4: 6.248,
                ncs: 4.837,
            },
            Row {
                nodes: 4,
                p4: 10.154,
                ncs: 4.074,
            },
        ],
        _ => Vec::new(),
    }
}

/// The paper's Table 3 (FFT, seconds).
pub fn paper_table3(testbed: &str) -> Vec<Row> {
    match testbed {
        "Ethernet" => vec![
            Row {
                nodes: 1,
                p4: 5.76,
                ncs: 5.84,
            },
            Row {
                nodes: 2,
                p4: 5.09,
                ncs: 4.76,
            },
            Row {
                nodes: 4,
                p4: 4.58,
                ncs: 4.32,
            },
            Row {
                nodes: 8,
                p4: 3.91,
                ncs: 3.47,
            },
        ],
        "NYNET" => vec![
            Row {
                nodes: 1,
                p4: 5.25,
                ncs: 5.32,
            },
            Row {
                nodes: 2,
                p4: 3.65,
                ncs: 3.34,
            },
            Row {
                nodes: 4,
                p4: 2.72,
                ncs: 2.43,
            },
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_math() {
        // Paper: 4-node matmul Ethernet ≈ 26%.
        let r = Row {
            nodes: 4,
            p4: 10.64,
            ncs: 7.88,
        };
        assert!((r.improvement() - 25.9).abs() < 0.1);
    }

    #[test]
    fn render_contains_both_sources() {
        let c = Comparison {
            testbed: "Ethernet",
            measured: vec![Row {
                nodes: 2,
                p4: 10.0,
                ncs: 8.0,
            }],
            paper: paper_table1("Ethernet"),
        };
        let s = c.render();
        assert!(s.contains("Ethernet"));
        assert!(s.contains("16.89"), "paper value present");
        assert!(s.contains("10.00"), "measured value present");
    }

    #[test]
    fn shape_violations_flag_regressions() {
        let c = Comparison {
            testbed: "X",
            measured: vec![
                Row {
                    nodes: 1,
                    p4: 10.0,
                    ncs: 10.1,
                },
                Row {
                    nodes: 2,
                    p4: 10.0,
                    ncs: 11.0,
                },
            ],
            paper: Vec::new(),
        };
        let v = c.shape_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("nodes=2"));
    }

    #[test]
    fn paper_tables_complete() {
        assert_eq!(paper_table1("Ethernet").len(), 4);
        assert_eq!(paper_table1("NYNET").len(), 3);
        assert_eq!(paper_table2("Ethernet").len(), 3);
        assert_eq!(paper_table3("NYNET").len(), 3);
    }
}

/// Renders the tracer's recorded spans as CSV
/// (`actor,kind,label,start_us,end_us`) for external plotting of the
/// timeline figures. Takes the tracer itself to resolve interned actors.
pub fn spans_to_csv(tr: &ncs_sim::Tracer) -> String {
    let mut s = String::from("actor,kind,label,start_us,end_us\n");
    for sp in tr.spans() {
        s.push_str(&format!(
            "{},{:?},{},{},{}\n",
            tr.actor_name(sp.actor),
            sp.kind,
            sp.label,
            sp.t0.as_ps() / 1_000_000,
            sp.t1.as_ps() / 1_000_000,
        ));
    }
    s
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use ncs_sim::{Dur, SimTime, SpanKind, Tracer};

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span(
            "p0/t0",
            SpanKind::Compute,
            "matmul",
            SimTime::ZERO,
            SimTime::ZERO + Dur::from_micros(25),
        );
        let csv = spans_to_csv(&tr);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "actor,kind,label,start_us,end_us");
        assert_eq!(lines.next().unwrap(), "p0/t0,Compute,matmul,0,25");
    }
}
