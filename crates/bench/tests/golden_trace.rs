//! Golden-trace determinism gate: the fixed-seed 4-host matmul, run under
//! full observability, must export a Chrome trace that is (a) byte-identical
//! across two runs in the same process and (b) byte-identical to the golden
//! snapshot checked in at `tests/golden/trace_matmul.json`.
//!
//! Any nondeterminism in the scheduler, the network stack, the metrics
//! registry, or the trace serializer shows up here as a byte diff. If the
//! diff is *intended* (the trace format or the instrumentation changed),
//! regenerate the snapshot:
//!
//! ```text
//! cargo run --release -p ncs-bench --bin xp_observe -- --smoke
//! cp results/trace_matmul.json crates/bench/tests/golden/trace_matmul.json
//! ```

use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{ErrorControl, FlowControl, NcsConfig};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::{AtmApiNet, AtmApiParams, HostParams, Network};
use ncs_sim::{chrome_trace_json, AnalysisConfig, Sim};
use std::sync::Arc;

const GOLDEN: &str = include_str!("golden/trace_matmul.json");

/// The exact workload `xp_observe` gates on: 4 worker nodes on a 5-host
/// FORE-LAN HSM stack, dim-32 matmul, seed 7, monolithic buffers.
fn run_golden_workload() -> String {
    let (analysis, sink) = AnalysisConfig::recording();
    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable_detail());
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(5)));
    let hosts = vec![HostParams::sparc_ipx(); 5];
    let net: Arc<dyn Network> = Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()));
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::None,
        io_buffer_bytes: 16 * 1024,
        analysis,
        ..NcsConfig::default()
    };
    let handle = setup_matmul_ncs_with(
        &sim,
        net,
        MatmulConfig {
            dim: 32,
            nodes: 4,
            seed: 7,
        },
        cfg,
    );
    sim.run().assert_clean();
    assert!(handle.verify(), "matmul result must verify bit-exact");
    assert!(sink.take().is_empty(), "analysis violations during golden run");
    sim.with_tracer(|tr| sim.with_metrics(|mm| chrome_trace_json(tr, mm)))
}

#[test]
fn two_runs_export_identical_traces() {
    let a = run_golden_workload();
    let b = run_golden_workload();
    assert_eq!(a, b, "two fixed-seed runs must export byte-identical traces");
}

#[test]
fn trace_matches_checked_in_golden() {
    let actual = run_golden_workload();
    if actual != GOLDEN {
        // Park the actual next to the harness output for inspection.
        let _ = std::fs::create_dir_all("results");
        let _ = std::fs::write("results/trace_matmul.actual.json", &actual);
        panic!(
            "exported trace diverged from tests/golden/trace_matmul.json \
             ({} vs {} bytes; actual written to results/trace_matmul.actual.json). \
             If the change is intended, regenerate the snapshot per the module docs.",
            actual.len(),
            GOLDEN.len()
        );
    }
}

#[test]
fn golden_trace_is_wellformed_chrome_json() {
    // Structural sanity on the snapshot itself so a bad regeneration can't
    // silently become the new truth: Chrome trace_event array form, with
    // metadata ("M"), complete-span ("X") and counter ("C") events.
    let g = GOLDEN.trim();
    assert!(
        g.starts_with("{\"traceEvents\":[") && g.ends_with('}'),
        "must be the Chrome trace object form"
    );
    for (ph, what) in [("\"ph\":\"M\"", "metadata"), ("\"ph\":\"X\"", "spans"), ("\"ph\":\"C\"", "counters")] {
        assert!(g.contains(ph), "golden trace has no {what} events");
    }
    // Balanced braces => no truncated snapshot.
    let opens = g.bytes().filter(|&b| b == b'{').count();
    let closes = g.bytes().filter(|&b| b == b'}').count();
    assert_eq!(opens, closes, "unbalanced braces: truncated snapshot?");
}
