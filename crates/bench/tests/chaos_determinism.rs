//! Seeded-determinism gate for the chaos harness: two runs of the same
//! harsh scenario — multi-switch fabric, cell corruption and loss, link
//! flaps, VBR cross-traffic — with the same seed must agree *exactly*:
//! byte-identical Chrome traces and identical per-process error-control
//! statistics. Any hidden wall-clock, map-iteration, or RNG-order
//! dependence in the fault path shows up here as a diff.

use bytes::Bytes;
use ncs_core::{ErrorControl, ErrorStats, NcsConfig, NcsWorld, RtoConfig, ThreadAddr};
use ncs_net::{
    spawn_vbr, ChaosNet, ChaosParams, ChaosTopology, Fabric, Network, NodeId, VbrConfig,
};
use ncs_sim::{chrome_trace_json, Dur, Sim, SimTime};
use std::sync::Arc;

const HOSTS: usize = 8;
const EXTRAS: usize = 2;
const MSGS: u32 = 4;
const BYTES: usize = 2048;

/// The same error-control configuration the `xp_chaos` sweep runs under.
fn chaos_cfg() -> NcsConfig {
    NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(10)),
        max_retries: 64,
        ..NcsConfig::default()
    }
}

/// One harsh fat-tree ring run; returns the per-process error statistics
/// and the full trace export.
fn run_harsh(seed: u64) -> (Vec<ErrorStats>, String) {
    let sim = Sim::new();
    sim.with_tracer(|tr| tr.enable_detail());
    let (fabric, base) = ChaosTopology::FatTree.build_chaos(HOSTS, EXTRAS, Some(2048));
    let chaos = ChaosNet::new(base, ChaosParams::new(5e-4, 5e-3, seed));
    let net: Arc<dyn Network> = Arc::clone(&chaos) as Arc<dyn Network>;
    // One access-link flap and one trunk flap inside the run window.
    fabric
        .downlink_of(NodeId(1))
        .schedule_flap(SimTime::from_ps(1_000_000_000), SimTime::from_ps(5_000_000_000));
    if let Some(trunk) = fabric.trunk_links().first() {
        trunk.schedule_flap(SimTime::from_ps(3_000_000_000), SimTime::from_ps(7_000_000_000));
    }
    for i in 0..EXTRAS {
        spawn_vbr(
            &sim,
            Arc::clone(&fabric) as Arc<dyn Fabric>,
            VbrConfig {
                src: NodeId((HOSTS + i) as u32),
                dst: NodeId((i * 3 + 1) as u32 % HOSTS as u32),
                chunk_bytes: 4096,
                mean_on: Dur::from_millis(1),
                mean_off: Dur::from_millis(3),
                horizon: Dur::from_millis(100),
                seed: seed.wrapping_add(i as u64),
            },
        );
    }
    let world = NcsWorld::launch(&sim, vec![net], HOSTS, chaos_cfg(), |id, proc_| {
        proc_.t_create("ring", 5, move |ncs| {
            let next = (id + 1) % HOSTS;
            let prev = (id + HOSTS - 1) % HOSTS;
            for i in 0..MSGS {
                ncs.send(
                    ThreadAddr::new(next, 0),
                    i,
                    Bytes::from(vec![(id as u32 + i) as u8; BYTES]),
                );
            }
            for i in 0..MSGS {
                let m = ncs.recv(Some(prev), None, Some(i));
                assert_eq!(m.data.len(), BYTES);
            }
        });
    });
    sim.run().assert_clean();
    let stats: Vec<ErrorStats> = world.procs().iter().map(|p| p.error_stats()).collect();
    let trace = sim.with_tracer(|tr| sim.with_metrics(|mm| chrome_trace_json(tr, mm)));
    sim.finish();
    (stats, trace)
}

#[test]
fn same_seed_harsh_runs_agree_exactly() {
    let (stats_a, trace_a) = run_harsh(0xC0FFEE);
    let (stats_b, trace_b) = run_harsh(0xC0FFEE);
    assert!(
        stats_a.iter().any(|s| s.retransmits > 0),
        "the scenario must actually exercise the fault path: {stats_a:?}"
    );
    assert_eq!(stats_a, stats_b, "error-control statistics diverged");
    assert_eq!(
        trace_a, trace_b,
        "fixed-seed harsh runs must export byte-identical traces \
         ({} vs {} bytes)",
        trace_a.len(),
        trace_b.len()
    );
}

#[test]
fn different_seeds_diverge() {
    // The inverse guard: if two different seeds agree byte-for-byte, the
    // seed is not actually feeding the fault RNG and the gate above is
    // vacuous.
    let (_, trace_a) = run_harsh(1);
    let (_, trace_b) = run_harsh(2);
    assert_ne!(trace_a, trace_b, "fault injection ignores its seed");
}
