//! Criterion microbenchmarks of the real (non-simulated) computational
//! kernels and runtime data structures:
//!
//! * ATM data plane: HEC, CRC-32, AAL5 segmentation/reassembly;
//! * MTS scheduler: the X2 ablation — queue operations and full
//!   block/unblock round trips (the paper's single-node threading
//!   overhead);
//! * application kernels: 8×8 DCT, JPEG block codec, FFT, matmul;
//! * the event kernel's schedule/pop path: timer wheel vs the
//!   `BinaryHeap` + boxed-closure design it replaced;
//! * a whole simulated NCS ping-pong (end-to-end simulator throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use bytes::Bytes;
use ncs_apps::fft::{dif_fft_in_place, fft};
use ncs_apps::jpeg::{compress, decompress};
use ncs_apps::matmul::multiply;
use ncs_apps::workloads::{GrayImage, Matrix};
use ncs_core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{aal5, cell, crc, HostParams, IdealFabric, TcpNet, TcpParams};
use ncs_sim::{Dur, Sim, SimRng};

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("atm-crc");
    let data4 = [0x12u8, 0x34, 0x56, 0x78];
    g.bench_function("hec", |b| b.iter(|| crc::hec(black_box(&data4))));
    let payload = vec![0xA5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("crc32-aal5-4k", |b| {
        b.iter(|| crc::crc32_aal5(black_box(&payload)))
    });
    g.bench_function("crc10-4k", |b| b.iter(|| crc::crc10(black_box(&payload))));
    g.finish();
}

fn bench_aal5(c: &mut Criterion) {
    let mut g = c.benchmark_group("aal5");
    let payload = vec![0x3Cu8; 8192];
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("segment-8k", |b| {
        b.iter(|| aal5::segment(black_box(&payload), 1, 42).unwrap())
    });
    let cells = aal5::segment(&payload, 1, 42).unwrap();
    g.bench_function("reassemble-8k", |b| {
        b.iter(|| aal5::reassemble(black_box(&cells)).unwrap())
    });
    g.bench_function("cell-roundtrip", |b| {
        let cell0 = cells[0].clone();
        b.iter(|| {
            let bytes = black_box(&cell0).to_bytes();
            cell::AtmCell::from_bytes(&bytes).unwrap()
        })
    });
    g.finish();
}

fn bench_mts(c: &mut Criterion) {
    let mut g = c.benchmark_group("mts-sched");
    g.sample_size(20);
    // X2: cost of simulated block/unblock round trips, measured in real
    // (wall-clock) time — the simulator's own overhead, complementing the
    // modeled 15 µs virtual context-switch cost.
    g.bench_function("block-unblock-x500", |b| {
        b.iter_batched(
            Sim::new,
            |sim| {
                sim.spawn("main", |ctx| {
                    let mts = ncs_mts::Mts::new(
                        ctx.sim(),
                        "p",
                        ncs_mts::MtsConfig {
                            context_switch: Dur::ZERO,
                            ..Default::default()
                        },
                    );
                    let mts2 = mts.clone();
                    let t1 = mts.spawn("a", 1, move |m| {
                        for _ in 0..500 {
                            m.block();
                        }
                    });
                    mts.spawn("b", 1, move |m| {
                        for _ in 0..500 {
                            mts2.unblock(m.ctx().sim(), t1);
                            m.yield_now();
                        }
                    });
                    mts.start(ctx);
                });
                sim.run().assert_clean();
                sim.finish();
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("app-kernels");
    let mut rng = SimRng::new(1);
    let img = GrayImage::synthetic(64, 64, &mut rng);
    g.throughput(Throughput::Bytes(img.len() as u64));
    g.bench_function("jpeg-compress-64x64", |b| {
        b.iter(|| compress(black_box(&img), 75))
    });
    let compressed = compress(&img, 75);
    g.bench_function("jpeg-decompress-64x64", |b| {
        b.iter(|| decompress(black_box(&compressed)).unwrap())
    });

    let signal: Vec<(f64, f64)> = (0..512).map(|i| ((i as f64).sin(), 0.0)).collect();
    g.bench_function("fft-512", |b| b.iter(|| fft(black_box(&signal))));
    g.bench_function("dif-fft-512-in-place", |b| {
        b.iter_batched(
            || signal.clone(),
            |mut s| dif_fft_in_place(&mut s),
            BatchSize::SmallInput,
        )
    });

    let a = Matrix::random(64, 64, &mut rng);
    let bm = Matrix::random(64, 64, &mut rng);
    g.bench_function("matmul-64", |b| {
        b.iter(|| multiply(black_box(&a), black_box(&bm)))
    });
    g.finish();
}

fn bench_tracing(c: &mut Criterion) {
    use ncs_sim::{MetricsRegistry, SimTime, SpanKind, Tracer};
    let mut g = c.benchmark_group("observability");
    // Guard for the hot-path span cost: labels are `&'static str` and
    // actors interned ids, so recording a span is push-only — and a
    // disabled tracer must stay a branch, not an allocation.
    let t0 = SimTime::ZERO;
    let t1 = SimTime::ZERO + Dur::from_micros(3);
    g.bench_function("span-enabled", |b| {
        let mut tr = Tracer::new();
        tr.enable();
        let actor = tr.intern("p0/t0");
        b.iter(|| tr.span_on(black_box(actor), SpanKind::Comm, "send", t0, t1))
    });
    g.bench_function("span-disabled", |b| {
        let mut tr = Tracer::new();
        let actor = tr.intern("p0/t0");
        b.iter(|| tr.span_on(black_box(actor), SpanKind::Comm, "send", t0, t1))
    });
    g.bench_function("metrics-observe", |b| {
        let mut m = MetricsRegistry::new();
        b.iter(|| m.observe("obs.e2e", black_box(Dur::from_micros(7))))
    });
    g.bench_function("causal-mark", |b| {
        let mut m = MetricsRegistry::new();
        let mut causal = 0u64;
        b.iter(|| {
            causal += 1;
            m.mark(black_box(causal), "enqueued", t0);
            m.mark(causal, "delivered", t1);
        })
    });
    g.finish();
}

fn bench_event_kernel(c: &mut Criterion) {
    use ncs_sim::wheel::TimerWheel;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut g = c.benchmark_group("event-kernel");
    // One schedule/pop round trip at a realistic standing queue depth:
    // the timer wheel the kernel runs on, against the BinaryHeap +
    // boxed-closure design it replaced (X10's micro comparison).
    const DEPTH: usize = 4096;
    const OPS: u64 = 1024;
    let offsets: Vec<u64> = {
        let mut rng = SimRng::new(42);
        (0..DEPTH as u64 + OPS)
            .map(|_| rng.gen_range(1 << 20))
            .collect()
    };
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("wheel-schedule-pop", |b| {
        b.iter_batched(
            || {
                let mut w: TimerWheel<u64> = TimerWheel::new();
                for (seq, &dt) in offsets[..DEPTH].iter().enumerate() {
                    w.push(dt, seq as u64, dt);
                }
                w
            },
            |mut w| {
                let mut now = 0u64;
                for (seq, &dt) in offsets[DEPTH..].iter().enumerate() {
                    let (t, _, v) = w.pop().expect("non-empty");
                    now = now.max(t);
                    black_box(v);
                    w.push(now + dt, (DEPTH + seq) as u64, dt);
                }
                w
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("heap-box-schedule-pop", |b| {
        type Ent = (Reverse<(u64, u64)>, Box<u64>);
        b.iter_batched(
            || {
                let mut h: BinaryHeap<Ent> = BinaryHeap::new();
                for (seq, &dt) in offsets[..DEPTH].iter().enumerate() {
                    h.push((Reverse((dt, seq as u64)), Box::new(dt)));
                }
                h
            },
            |mut h| {
                let mut now = 0u64;
                for (seq, &dt) in offsets[DEPTH..].iter().enumerate() {
                    let (Reverse((t, _)), v) = h.pop().expect("non-empty");
                    now = now.max(t);
                    black_box(*v);
                    h.push((Reverse((now + dt, (DEPTH + seq) as u64)), Box::new(dt)));
                }
                h
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_sim_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-end-to-end");
    g.sample_size(20);
    g.bench_function("ncs-ping-pong-x20", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(10)));
            let hosts = vec![HostParams::test_fast(); 2];
            let net: Arc<dyn ncs_net::Network> =
                Arc::new(TcpNet::new(fabric, hosts, TcpParams::raw(1460, 16384)));
            NcsWorld::launch(&sim, vec![net], 2, NcsConfig::default(), |id, proc_| {
                proc_.t_create("w", 5, move |ncs| {
                    for i in 0..20u32 {
                        if id == 0 {
                            ncs.send(ThreadAddr::new(1, 0), i, Bytes::from_static(b"ping"));
                            ncs.recv(Some(1), None, Some(i));
                        } else {
                            ncs.recv(Some(0), None, Some(i));
                            ncs.send(ThreadAddr::new(0, 0), i, Bytes::from_static(b"pong"));
                        }
                    }
                });
            });
            sim.run().assert_clean();
            sim.finish();
        })
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    use ncs_apps::jpeg::huffman;
    let mut g = c.benchmark_group("huffman");
    // Realistic quantized blocks: sparse with small values.
    let blocks: Vec<[i16; 64]> = (0..64)
        .map(|i| {
            let mut b = [0i16; 64];
            b[0] = 40 + (i % 11) as i16;
            b[1] = ((i % 5) as i16) - 2;
            b[8] = 1;
            b
        })
        .collect();
    g.throughput(Throughput::Bytes((blocks.len() * 128) as u64));
    g.bench_function("encode-64-blocks", |b| {
        b.iter(|| huffman::encode_blocks(black_box(&blocks)))
    });
    let enc = huffman::encode_blocks(&blocks);
    g.bench_function("decode-64-blocks", |b| {
        b.iter(|| huffman::decode_blocks(black_box(&enc), blocks.len()).unwrap())
    });
    g.finish();
}

fn bench_fabrics(c: &mut Criterion) {
    use ncs_net::atm::{AtmLanFabric, AtmLanParams, NynetFabric, NynetParams};
    use ncs_net::ethernet::{EthernetFabric, EthernetParams};
    use ncs_net::fabric::{Fabric, NodeId};
    use ncs_sim::SimTime;
    let mut g = c.benchmark_group("fabric-booking");
    g.bench_function("ethernet-transfer", |b| {
        let f = EthernetFabric::new(EthernetParams::new(8));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let tt = f.transfer(NodeId(0), NodeId(1), black_box(1460), t);
            t = tt.arrival;
            tt
        })
    });
    g.bench_function("atm-lan-transfer", |b| {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(8));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let tt = f.transfer(NodeId(0), NodeId(5), black_box(9140), t);
            t = tt.arrival;
            tt
        })
    });
    g.bench_function("nynet-cross-site-transfer", |b| {
        let f = NynetFabric::new(NynetParams::nynet(8));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let tt = f.transfer(NodeId(0), NodeId(7), black_box(9140), t);
            t = tt.arrival;
            tt
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_aal5,
    bench_mts,
    bench_kernels,
    bench_huffman,
    bench_fabrics,
    bench_tracing,
    bench_event_kernel,
    bench_sim_ping_pong
);
criterion_main!(benches);
