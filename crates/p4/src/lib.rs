//! # ncs-p4 — the p4 message-passing substrate (the paper's baseline)
//!
//! A reimplementation of the Argonne p4 primitives the paper measures
//! against and layers NCS_MPS Approach 1 on: procgroups of single-threaded
//! processes, typed sends, wildcard-matched blocking receives,
//! `messages_available` polling, broadcast, and a global barrier — all over
//! the simulated socket/TCP/IP stack of `ncs-net`.
//!
//! The crucial baseline semantics: a p4 process has exactly one thread, so
//! `recv` idles the whole CPU until a matching message arrives. Every
//! performance gap the paper reports between "p4" and "NCS_MTS/p4" traces
//! back to that difference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proc;
pub mod procgroup;

pub use proc::{create_procgroup, P4Msg, P4Proc, TYPE_BARRIER_ARRIVE, TYPE_BARRIER_GO};
pub use procgroup::{parse_procgroup, ProcgroupEntry, ProcgroupError, ProcgroupSpec};
