//! The p4 process API: typed, wildcard-matched message passing.
//!
//! Models the Argonne p4 primitives the paper builds on (Butler & Lusk):
//! `p4_send`, `p4_recv` with type/source wildcards, `p4_messages_available`,
//! `p4_broadcast`, and a global barrier. The defining baseline behaviour is
//! that **`recv` blocks the whole process** — p4 processes are
//! single-threaded Unix processes, so a blocking receive leaves the CPU
//! idle. NCS_MTS/p4 (ncs-core) wraps these same primitives but blocks only
//! the calling user-level thread.

use bytes::Bytes;
use ncs_net::stack::BlockingWait;
use ncs_net::{Delivery, Network, NodeId};
use ncs_sim::{Ctx, SimChannel};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Message type used internally for barrier arrivals.
pub const TYPE_BARRIER_ARRIVE: i32 = i32::MIN;
/// Message type used internally for barrier releases.
pub const TYPE_BARRIER_GO: i32 = i32::MIN + 1;

/// A received p4 message.
#[derive(Clone, Debug)]
pub struct P4Msg {
    /// Application message type.
    pub msg_type: i32,
    /// Sender rank.
    pub from: usize,
    /// Payload.
    pub data: Bytes,
}

/// One p4 process's endpoint.
///
/// Rank 0 conventionally plays "host" in the paper's host–node programs.
pub struct P4Proc {
    id: usize,
    n: usize,
    net: Arc<dyn Network>,
    inbox: SimChannel<Delivery>,
    /// Received but not yet matched messages, in arrival order.
    stash: Mutex<VecDeque<P4Msg>>,
    /// Tracing label.
    actor: String,
}

impl P4Proc {
    /// Creates the endpoint for rank `id` of `n` on `net`.
    pub fn new(id: usize, n: usize, net: Arc<dyn Network>) -> P4Proc {
        assert!(id < n && n <= net.nodes());
        P4Proc {
            id,
            n,
            net: Arc::clone(&net),
            inbox: net.inbox(NodeId(id as u32)),
            stash: Mutex::new(VecDeque::new()),
            actor: format!("proc{id}/main"),
        }
    }

    /// This process's rank (`p4_get_my_id`).
    pub fn my_id(&self) -> usize {
        self.id
    }

    /// Number of processes in the procgroup.
    pub fn num_procs(&self) -> usize {
        self.n
    }

    /// The network this procgroup runs on.
    pub fn net(&self) -> &Arc<dyn Network> {
        &self.net
    }

    /// Sends `data` of type `msg_type` to rank `to` (`p4_send`). Blocks the
    /// process for the full sender-side protocol cost.
    pub fn send(&self, ctx: &Ctx, msg_type: i32, to: usize, data: Bytes) {
        assert!(to < self.n, "rank {to} out of range");
        assert_ne!(to, self.id, "p4 self-send is not supported");
        let t0 = ctx.now();
        self.net.send(
            ctx,
            &BlockingWait,
            NodeId(self.id as u32),
            NodeId(to as u32),
            msg_type as u32 as u64,
            data,
        );
        let t1 = ctx.now();
        ctx.sim().with_tracer(|tr| {
            tr.span(&self.actor, ncs_sim::SpanKind::Comm, "send", t0, t1);
        });
    }

    /// Receives the oldest message matching the filters (`p4_recv`).
    /// `None` means wildcard, like p4's `-1`. **Blocks the whole process**
    /// until a matching message exists.
    pub fn recv(&self, ctx: &Ctx, msg_type: Option<i32>, from: Option<usize>) -> P4Msg {
        let t0 = ctx.now();
        loop {
            if let Some(m) = self.take_matching(msg_type, from) {
                let t1 = ctx.now();
                ctx.sim().with_tracer(|tr| {
                    tr.span(&self.actor, ncs_sim::SpanKind::Comm, "recv", t0, t1);
                });
                return m;
            }
            // Nothing stashed: block in the kernel for the next delivery.
            let d = self
                .inbox
                .recv(ctx)
                .expect("p4 inbox closed while receiving");
            self.ingest(ctx, d);
        }
    }

    /// Whether a matching message is already available without blocking
    /// (`p4_messages_available`). Pulls any landed deliveries out of the
    /// kernel first, paying their pickup cost.
    pub fn messages_available(
        &self,
        ctx: &Ctx,
        msg_type: Option<i32>,
        from: Option<usize>,
    ) -> bool {
        while let Some(d) = self.inbox.try_recv(ctx.sim()) {
            self.ingest(ctx, d);
        }
        self.stash
            .lock()
            .iter()
            .any(|m| Self::matches(m, msg_type, from))
    }

    /// Sends `data` to every other rank (`p4_broadcast`), lowest rank first.
    pub fn broadcast(&self, ctx: &Ctx, msg_type: i32, data: Bytes) {
        for to in 0..self.n {
            if to != self.id {
                self.send(ctx, msg_type, to, data.clone());
            }
        }
    }

    /// Global barrier over the procgroup (`p4_global_barrier`): everyone
    /// reports to rank 0, which releases everyone.
    pub fn barrier(&self, ctx: &Ctx) {
        if self.n == 1 {
            return;
        }
        if self.id == 0 {
            for _ in 1..self.n {
                self.recv(ctx, Some(TYPE_BARRIER_ARRIVE), None);
            }
            self.broadcast(ctx, TYPE_BARRIER_GO, Bytes::new());
        } else {
            self.send(ctx, TYPE_BARRIER_ARRIVE, 0, Bytes::new());
            self.recv(ctx, Some(TYPE_BARRIER_GO), Some(0));
        }
    }

    /// Moves a kernel delivery into the user-level stash, charging the
    /// receive-side protocol cost (interrupts, checksums, the copy to user
    /// space) plus the blocking-receiver reaction latency: a p4 process
    /// sleeps in select() between big-message fragments and pays a wakeup
    /// for each (NCS's polling receive thread does not — the measurable
    /// half of the paper's "avoid operating system overhead" claim).
    fn ingest(&self, ctx: &Ctx, d: Delivery) {
        let me = NodeId(self.id as u32);
        let cost = self.net.recv_pickup_cost(me, d.payload.len())
            + self.net.recv_reaction_cost(me, d.payload.len());
        ctx.sleep(cost);
        self.stash.lock().push_back(P4Msg {
            msg_type: d.tag as u32 as i32,
            from: d.src.idx(),
            data: d.payload,
        });
    }

    fn take_matching(&self, msg_type: Option<i32>, from: Option<usize>) -> Option<P4Msg> {
        let mut stash = self.stash.lock();
        let pos = stash
            .iter()
            .position(|m| Self::matches(m, msg_type, from))?;
        stash.remove(pos)
    }

    fn matches(m: &P4Msg, msg_type: Option<i32>, from: Option<usize>) -> bool {
        msg_type.is_none_or(|t| t == m.msg_type) && from.is_none_or(|f| f == m.from)
    }
}

/// Spawns a procgroup of `n` processes on `net`, each running `body` as its
/// own green thread (one single-threaded Unix process each, in p4 style).
/// Returns after scheduling; run the simulation to execute.
pub fn create_procgroup(
    sim: &ncs_sim::Sim,
    net: Arc<dyn Network>,
    n: usize,
    body: impl Fn(&Ctx, Arc<P4Proc>) + Send + Sync + 'static,
) -> Vec<Arc<P4Proc>> {
    assert!(n >= 1 && n <= net.nodes(), "procgroup larger than testbed");
    let body = Arc::new(body);
    let mut procs = Vec::with_capacity(n);
    for id in 0..n {
        let proc_ = Arc::new(P4Proc::new(id, n, Arc::clone(&net)));
        procs.push(Arc::clone(&proc_));
        let body = Arc::clone(&body);
        sim.spawn(format!("p4-{id}"), move |ctx| {
            body(ctx, proc_);
        });
    }
    procs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::{HostParams, IdealFabric, TcpNet, TcpParams};
    use ncs_sim::{Dur, Sim, SimTime};

    fn test_net(n: usize) -> Arc<dyn Network> {
        let fabric = Arc::new(IdealFabric::new(n, Dur::from_micros(50)));
        let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
        // The zero-overhead profile: these tests exercise matching logic,
        // not the calibrated 1995 cost model.
        Arc::new(TcpNet::new(fabric, hosts, TcpParams::raw(1460, 16 * 1024)))
    }

    #[test]
    fn ping_pong_roundtrip() {
        let sim = Sim::new();
        let net = test_net(2);
        create_procgroup(&sim, net, 2, |ctx, p| {
            if p.my_id() == 0 {
                p.send(ctx, 1, 1, Bytes::from_static(b"ping"));
                let m = p.recv(ctx, Some(2), Some(1));
                assert_eq!(&m.data[..], b"pong");
            } else {
                let m = p.recv(ctx, Some(1), Some(0));
                assert_eq!(&m.data[..], b"ping");
                p.send(ctx, 2, 0, Bytes::from_static(b"pong"));
            }
        });
        sim.run().assert_clean();
    }

    #[test]
    fn wildcard_recv_matches_any() {
        let sim = Sim::new();
        let net = test_net(3);
        create_procgroup(&sim, net, 3, |ctx, p| match p.my_id() {
            0 => {
                let mut froms = Vec::new();
                for _ in 0..2 {
                    let m = p.recv(ctx, None, None);
                    froms.push(m.from);
                }
                froms.sort_unstable();
                assert_eq!(froms, vec![1, 2]);
            }
            id => p.send(ctx, id as i32, 0, Bytes::from(vec![id as u8])),
        });
        sim.run().assert_clean();
    }

    #[test]
    fn type_filter_skips_nonmatching() {
        let sim = Sim::new();
        let net = test_net(2);
        create_procgroup(&sim, net, 2, |ctx, p| {
            if p.my_id() == 1 {
                p.send(ctx, 10, 0, Bytes::from_static(b"first"));
                p.send(ctx, 20, 0, Bytes::from_static(b"second"));
            } else {
                // Ask for type 20 first: must skip over the earlier type 10.
                let m = p.recv(ctx, Some(20), None);
                assert_eq!(&m.data[..], b"second");
                let m = p.recv(ctx, Some(10), None);
                assert_eq!(&m.data[..], b"first");
            }
        });
        sim.run().assert_clean();
    }

    #[test]
    fn recv_blocks_whole_process() {
        // The baseline property: while rank 0 is in recv, its virtual time
        // advances to the arrival — no other work happens in that process.
        let sim = Sim::new();
        let net = test_net(2);
        create_procgroup(&sim, net, 2, |ctx, p| {
            if p.my_id() == 0 {
                let t0 = ctx.now();
                let _ = p.recv(ctx, None, None);
                assert!(ctx.now().since(t0) >= Dur::from_millis(5));
            } else {
                ctx.sleep(Dur::from_millis(5)); // compute before sending
                p.send(ctx, 1, 0, Bytes::from_static(b"x"));
            }
        });
        sim.run().assert_clean();
    }

    #[test]
    fn messages_available_polls_without_blocking() {
        let sim = Sim::new();
        let net = test_net(2);
        create_procgroup(&sim, net, 2, |ctx, p| {
            if p.my_id() == 0 {
                assert!(!p.messages_available(ctx, None, None));
                ctx.sleep(Dur::from_millis(10));
                assert!(p.messages_available(ctx, Some(5), Some(1)));
                assert!(!p.messages_available(ctx, Some(6), None));
                let m = p.recv(ctx, Some(5), None);
                assert_eq!(m.from, 1);
            } else {
                p.send(ctx, 5, 0, Bytes::from_static(b"hello"));
            }
        });
        sim.run().assert_clean();
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let sim = Sim::new();
        let net = test_net(4);
        create_procgroup(&sim, net, 4, |ctx, p| {
            if p.my_id() == 0 {
                p.broadcast(ctx, 3, Bytes::from_static(b"all"));
            } else {
                let m = p.recv(ctx, Some(3), Some(0));
                assert_eq!(&m.data[..], b"all");
            }
        });
        sim.run().assert_clean();
    }

    #[test]
    fn barrier_aligns_processes() {
        let sim = Sim::new();
        let net = test_net(4);
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&times);
        create_procgroup(&sim, net, 4, move |ctx, p| {
            ctx.sleep(Dur::from_millis(p.my_id() as u64)); // skewed arrivals
            p.barrier(ctx);
            t2.lock().push(ctx.now());
        });
        sim.run().assert_clean();
        let times = times.lock();
        assert_eq!(times.len(), 4);
        let first = times[0];
        // All exit at (nearly) the same time: within the release fan-out.
        for &t in times.iter() {
            assert!(
                t.saturating_since(first) < Dur::from_millis(2)
                    && first.saturating_since(t) < Dur::from_millis(2),
                "barrier skew too large"
            );
        }
        assert!(times
            .iter()
            .all(|&t| t >= SimTime::ZERO + Dur::from_millis(3)));
    }

    #[test]
    fn single_proc_barrier_is_noop() {
        let sim = Sim::new();
        let net = test_net(1);
        create_procgroup(&sim, net, 1, |ctx, p| {
            let t0 = ctx.now();
            p.barrier(ctx);
            assert_eq!(ctx.now(), t0);
        });
        sim.run().assert_clean();
    }
}
