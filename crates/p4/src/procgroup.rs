//! The p4 *procgroup file* — how `p4_create_procgroup` learned where to
//! run (Butler & Lusk's user's guide, §"The procgroup file").
//!
//! ```text
//! # master runs locally; no extra local slaves
//! local 0
//! sun1.npac.syr.edu 2 /home/ncs/bin/matmul
//! sun2.npac.syr.edu 1 /home/ncs/bin/matmul ryadav
//! ```
//!
//! Line grammar: `local <nslaves>` (exactly once, usually first) or
//! `<hostname> <nprocs> [<program-path> [<login>]]`. `#` starts a comment.
//! The master counts as one process on the `local` host, so the paper's
//! "N nodes" experiments use a procgroup totalling N+1 processes.

/// One remote-host entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcgroupEntry {
    /// Hostname to rsh into.
    pub host: String,
    /// Number of processes started there.
    pub nprocs: usize,
    /// Program path (None = same as the master's).
    pub program: Option<String>,
    /// Remote login (None = same user).
    pub login: Option<String>,
}

/// A parsed procgroup file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcgroupSpec {
    /// Slave processes co-located with the master.
    pub local_slaves: usize,
    /// Remote entries, in file order (rank order).
    pub entries: Vec<ProcgroupEntry>,
}

impl ProcgroupSpec {
    /// Total processes: the master, local slaves, and every remote process.
    pub fn total_procs(&self) -> usize {
        1 + self.local_slaves + self.entries.iter().map(|e| e.nprocs).sum::<usize>()
    }

    /// Hostname that process `rank` runs on (`"local"` for the master and
    /// local slaves), following p4's rank assignment order.
    pub fn host_of(&self, rank: usize) -> Option<&str> {
        if rank <= self.local_slaves {
            return Some("local");
        }
        let mut next = self.local_slaves + 1;
        for e in &self.entries {
            if rank < next + e.nprocs {
                return Some(&e.host);
            }
            next += e.nprocs;
        }
        None
    }
}

/// Parse failure, with the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcgroupError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ProcgroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "procgroup line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProcgroupError {}

/// Parses procgroup-file text.
pub fn parse_procgroup(text: &str) -> Result<ProcgroupSpec, ProcgroupError> {
    let mut local_slaves: Option<usize> = None;
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().unwrap();
        if first == "local" {
            if local_slaves.is_some() {
                return Err(ProcgroupError {
                    line: line_no,
                    message: "duplicate 'local' line".into(),
                });
            }
            let n = parts
                .next()
                .ok_or_else(|| ProcgroupError {
                    line: line_no,
                    message: "'local' needs a slave count".into(),
                })?
                .parse()
                .map_err(|_| ProcgroupError {
                    line: line_no,
                    message: "bad local slave count".into(),
                })?;
            if parts.next().is_some() {
                return Err(ProcgroupError {
                    line: line_no,
                    message: "trailing tokens after 'local <n>'".into(),
                });
            }
            local_slaves = Some(n);
        } else {
            let nprocs: usize = parts
                .next()
                .ok_or_else(|| ProcgroupError {
                    line: line_no,
                    message: format!("host '{first}' needs a process count"),
                })?
                .parse()
                .map_err(|_| ProcgroupError {
                    line: line_no,
                    message: "bad process count".into(),
                })?;
            if nprocs == 0 {
                return Err(ProcgroupError {
                    line: line_no,
                    message: "process count must be positive".into(),
                });
            }
            let program = parts.next().map(str::to_string);
            let login = parts.next().map(str::to_string);
            if parts.next().is_some() {
                return Err(ProcgroupError {
                    line: line_no,
                    message: "too many tokens on host line".into(),
                });
            }
            entries.push(ProcgroupEntry {
                host: first.to_string(),
                nprocs,
                program,
                login,
            });
        }
    }
    Ok(ProcgroupSpec {
        local_slaves: local_slaves.ok_or(ProcgroupError {
            line: 0,
            message: "missing 'local' line".into(),
        })?,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# NYNET matmul, 4 nodes
local 0
sun1.npac.syr.edu 2 /home/ncs/bin/matmul
sun2.npac.syr.edu 1 /home/ncs/bin/matmul ryadav
sun3.npac.syr.edu 1
";

    #[test]
    fn parses_the_guide_style_file() {
        let pg = parse_procgroup(SAMPLE).unwrap();
        assert_eq!(pg.local_slaves, 0);
        assert_eq!(pg.entries.len(), 3);
        assert_eq!(pg.total_procs(), 5); // master + 4 nodes
        assert_eq!(
            pg.entries[0],
            ProcgroupEntry {
                host: "sun1.npac.syr.edu".into(),
                nprocs: 2,
                program: Some("/home/ncs/bin/matmul".into()),
                login: None,
            }
        );
        assert_eq!(pg.entries[1].login.as_deref(), Some("ryadav"));
        assert_eq!(pg.entries[2].program, None);
    }

    #[test]
    fn rank_to_host_mapping() {
        let pg = parse_procgroup(SAMPLE).unwrap();
        assert_eq!(pg.host_of(0), Some("local")); // master
        assert_eq!(pg.host_of(1), Some("sun1.npac.syr.edu"));
        assert_eq!(pg.host_of(2), Some("sun1.npac.syr.edu"));
        assert_eq!(pg.host_of(3), Some("sun2.npac.syr.edu"));
        assert_eq!(pg.host_of(4), Some("sun3.npac.syr.edu"));
        assert_eq!(pg.host_of(5), None);
    }

    #[test]
    fn local_slaves_counted() {
        let pg = parse_procgroup("local 2\nfar.host 1\n").unwrap();
        assert_eq!(pg.total_procs(), 4);
        assert_eq!(pg.host_of(0), Some("local"));
        assert_eq!(pg.host_of(2), Some("local"));
        assert_eq!(pg.host_of(3), Some("far.host"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let pg = parse_procgroup("\n# all of it\nlocal 0 # trailing comment\n\n").unwrap();
        assert_eq!(pg.total_procs(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_procgroup("local 0\nbadhost\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_procgroup("local zero\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_procgroup("host 1\n").unwrap_err();
        assert_eq!(e.line, 0, "missing local line");
        let e = parse_procgroup("local 0\nlocal 1\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse_procgroup("local 0\nh 0\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }
}
