#!/usr/bin/env bash
# Full verification pipeline. The first five stages mirror CI
# (.github/workflows/ci.yml) exactly; the rest are local extras:
# benches (smoke), docs, and every experiment regenerator.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, as CI) =="
cargo build --release --workspace

echo "== tests (as CI) =="
cargo test -q --workspace

echo "== clippy (as CI) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== analysis: determinism lint + invariant smoke (as CI) =="
cargo run --release -p ncs-analysis -- all

echo "== schedule-space exploration smoke (as CI) =="
cargo run --release -p ncs-analysis -- explore --smoke

echo "== pipelined data path smoke (as CI) =="
cargo run --release -p ncs-bench --bin xp_pipeline -- --smoke

echo "== observability smoke: golden-trace determinism (as CI) =="
cargo run --release -p ncs-bench --bin xp_observe -- --smoke

echo "== event-kernel scaling smoke + ns/event regression guard (as CI) =="
cargo run --release -p ncs-bench --bin xp_scale -- --smoke --guard

echo "== chaos sweep smoke: faults, topologies, graceful degradation (as CI) =="
cargo run --release -p ncs-bench --bin xp_chaos -- --smoke

echo "== benches (smoke) =="
cargo bench -p ncs-bench -- --test

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== experiments =="
cargo run --release -p ncs-bench --bin report

echo "ALL CHECKS PASSED"
