#!/usr/bin/env bash
# Full verification pipeline: format check, lints, tests, benches (smoke),
# docs, and every experiment regenerator.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== benches (smoke) =="
cargo bench -p ncs-bench -- --test

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== experiments =="
cargo run --release -p ncs-bench --bin report

echo "ALL CHECKS PASSED"
