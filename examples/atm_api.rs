//! Programming the raw ATM API (paper Figure 12): open virtual circuits
//! with traffic classes, push AAL5 PDUs through the High Speed Mode stack,
//! and watch two circuits between the same hosts stay isolated.
//!
//! ```text
//! cargo run --release --example atm_api
//! ```

use bytes::Bytes;
use ncs::net::atm::{AtmLanFabric, AtmLanParams};
use ncs::net::{AtmApi, AtmApiNet, AtmApiParams, HostParams, Network, NodeId, TrafficClass};
use ncs::sim::{Dur, Sim, SimTime};
use std::sync::Arc;

fn main() {
    let sim = Sim::new();
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(2)));
    let hosts = vec![HostParams::sparc_ipx(); 2];
    let net: Arc<dyn Network> = Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()));
    println!("stack: {}\n", net.description());

    let a = Arc::new(AtmApi::bind(NodeId(0), Arc::clone(&net)));
    let b = Arc::new(AtmApi::bind(NodeId(1), net));

    let a2 = Arc::clone(&a);
    sim.spawn("host-a", move |ctx| {
        // One CBR circuit for control, one UBR circuit for bulk.
        let control = a2.open(NodeId(1), TrafficClass::Cbr).unwrap();
        let bulk = a2.open(NodeId(1), TrafficClass::Ubr).unwrap();
        println!(
            "[{}] opened circuits: control vci={} bulk vci={}",
            ctx.now(),
            control.vci,
            bulk.vci
        );
        a2.send(ctx, bulk, Bytes::from(vec![0xAB; 48 * 1024]))
            .unwrap();
        a2.send(ctx, control, Bytes::from_static(b"bulk sent"))
            .unwrap();
        let ack = a2.recv(ctx, control).unwrap();
        println!(
            "[{}] control ack: {:?}",
            ctx.now(),
            std::str::from_utf8(&ack).unwrap()
        );
        a2.close(bulk).unwrap();
        a2.close(control).unwrap();
    });
    sim.spawn("host-b", move |ctx| {
        let control = b.open(NodeId(0), TrafficClass::Cbr).unwrap();
        let bulk = b.open(NodeId(0), TrafficClass::Ubr).unwrap();
        // Take the control PDU first even though bulk bytes arrive earlier:
        // circuit demultiplexing keeps the streams apart.
        let note = b.recv(ctx, control).unwrap();
        assert_eq!(&note[..], b"bulk sent");
        let t_note = ctx.now();
        let payload = b.recv(ctx, bulk).unwrap();
        assert_eq!(payload.len(), 48 * 1024);
        assert!(payload.iter().all(|&x| x == 0xAB));
        println!(
            "[{}] control note at {}, bulk PDU ({} KB) complete at {}",
            ctx.now(),
            t_note,
            payload.len() / 1024,
            ctx.now()
        );
        b.send(ctx, control, Bytes::from_static(b"got it")).unwrap();
    });
    let out = sim.run();
    out.assert_clean();
    println!(
        "\ndone at {} — {} cells' worth of PDUs crossed the LAN",
        out.end_time,
        (48 * 1024 + 64) / 48
    );
    let _ = SimTime::ZERO + Dur::ZERO;
}
