//! Distributed matrix multiplication on a simulated workstation cluster —
//! the paper's Section 5.1 experiment at one configuration, with both
//! variants and verified results.
//!
//! ```text
//! cargo run --release --example matmul_cluster -- [nodes] [dim]
//! ```

use ncs::apps::matmul::{matmul_ncs, matmul_p4, MatmulConfig};
use ncs::net::Testbed;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().map_or(4, |s| s.parse().expect("nodes"));
    let dim: usize = args.next().map_or(128, |s| s.parse().expect("dim"));
    let cfg = MatmulConfig {
        dim,
        nodes,
        seed: 0x4D4D,
    };
    println!("C = A·B with {dim}x{dim} matrices on {nodes} nodes + 1 host\n");
    for (label, testbed) in [
        ("Ethernet (SPARC ELC)", Testbed::SunEthernet),
        ("ATM LAN  (SPARC IPX)", Testbed::SunAtmLanTcp),
        ("NYNET WAN (SPARC IPX)", Testbed::NynetTcp),
    ] {
        let p4 = matmul_p4(testbed.build(nodes + 1), cfg);
        let ncs = matmul_ncs(testbed.build(nodes + 1), cfg);
        assert!(p4.verified && ncs.verified, "result verification failed");
        println!(
            "{label}: p4 {:7.3}s   NCS_MTS/p4 {:7.3}s   improvement {:4.1}%   (both verified)",
            p4.elapsed.as_secs_f64(),
            ncs.elapsed.as_secs_f64(),
            (p4.elapsed.as_secs_f64() - ncs.elapsed.as_secs_f64()) / p4.elapsed.as_secs_f64()
                * 100.0
        );
    }
}
