//! The two-tier NSM/HSM architecture (paper Figure 6) plus the
//! message-passing filters: one process carries both a TCP/IP tier
//! (interoperable Normal Speed Mode) and an ATM-API tier (High Speed
//! Mode) over the same ATM LAN, picks per message, and ports p4- and
//! MPI-style code through the filters unchanged.
//!
//! ```text
//! cargo run --release --example two_tier
//! ```

use bytes::Bytes;
use ncs::core::filters::{MpiFilter, P4Filter};
use ncs::core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs::net::Testbed;
use ncs::sim::{Dur, Sim, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

const HSM: usize = 0;
const NSM: usize = 1;

fn main() {
    let sim = Sim::new();
    let hsm = Testbed::SunAtmLanApi.build(2);
    let nsm = Testbed::SunAtmLanTcp.build(2);
    println!("tier {HSM} (HSM): {}", hsm.description());
    println!("tier {NSM} (NSM): {}\n", nsm.description());

    let latencies: Arc<Mutex<Vec<(String, Dur)>>> = Arc::new(Mutex::new(Vec::new()));
    let lat2 = Arc::clone(&latencies);

    NcsWorld::launch(
        &sim,
        vec![hsm, nsm],
        2,
        NcsConfig::default(),
        move |id, proc_| {
            let lat = Arc::clone(&lat2);
            proc_.t_create("main", 5, move |ncs| {
                let payload = Bytes::from(vec![7u8; 32 * 1024]);
                if id == 0 {
                    // Same 32 KB message, once per tier.
                    ncs.send_via(HSM, ThreadAddr::new(1, 0), 1, payload.clone());
                    ncs.send_via(NSM, ThreadAddr::new(1, 0), 2, payload.clone());
                    // Then show the filters: p4-style and MPI-style code ported
                    // onto NCS without change.
                    let p4 = P4Filter::new(ncs);
                    p4.send(100, 1, Bytes::from_static(b"ported p4 code"));
                    let mpi = MpiFilter::new(ncs);
                    let sum = mpi.bcast(0, Some(Bytes::from_static(b"mpi bcast")));
                    assert_eq!(&sum[..], b"mpi bcast");
                    mpi.barrier();
                } else {
                    let t0 = SimTime::ZERO;
                    let a = ncs.recv(Some(0), None, Some(1));
                    lat.lock()
                        .push(("HSM (ATM API)".into(), ncs.ctx().now().since(t0)));
                    let b = ncs.recv(Some(0), None, Some(2));
                    lat.lock()
                        .push(("NSM (TCP/IP) ".into(), ncs.ctx().now().since(t0)));
                    assert_eq!(a.data.len(), 32 * 1024);
                    assert_eq!(b.data.len(), 32 * 1024);
                    let p4 = P4Filter::new(ncs);
                    let (t, from, d) = p4.recv(Some(100), Some(0));
                    assert_eq!((t, from), (100, 0));
                    assert_eq!(&d[..], b"ported p4 code");
                    let mpi = MpiFilter::new(ncs);
                    let got = mpi.bcast(0, None);
                    assert_eq!(&got[..], b"mpi bcast");
                    mpi.barrier();
                }
            });
        },
    );
    sim.run().assert_clean();

    println!("32 KB delivery timestamps at the receiver:");
    for (label, at) in latencies.lock().iter() {
        println!("  {label}: delivered by t = {at}");
    }
    println!("\nfilters exercised: P4Filter (p4-style), MpiFilter (MPI-style),");
    println!("both running over the NCS system threads unchanged");
}
