//! Distributed DIF FFT across the NYNET wide-area testbed (paper Section
//! 5.3), including the OC-48 vs DS-3 backbone comparison — the upstate–
//! downstate link of Figure 1.
//!
//! ```text
//! cargo run --release --example fft_wan -- [nodes]
//! ```

use ncs::apps::fft::{fft_ncs, fft_p4, FftConfig};
use ncs::net::atm::{NynetFabric, NynetParams};
use ncs::net::HostParams;
use ncs::net::{Network, TcpNet, TcpParams};
use std::sync::Arc;

fn nynet(nodes: usize, ds3: bool) -> Arc<dyn Network> {
    let params = if ds3 {
        NynetParams::nynet_ds3(nodes)
    } else {
        NynetParams::nynet(nodes)
    };
    let fabric = Arc::new(NynetFabric::new(params));
    let hosts = vec![HostParams::sparc_ipx(); nodes];
    Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
}

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map_or(4, |s| s.parse().expect("nodes"));
    let cfg = FftConfig::paper(nodes);
    println!(
        "DIF FFT: M = {} points x {} sample sets, {} nodes across 2 NYNET sites\n",
        cfg.m, cfg.sets, nodes
    );
    for (label, ds3) in [("OC-48 backbone", false), ("DS-3  backbone", true)] {
        let p4 = fft_p4(nynet(nodes + 1, ds3), cfg);
        let ncs = fft_ncs(nynet(nodes + 1, ds3), cfg);
        assert!(p4.verified && ncs.verified, "spectra must verify");
        println!(
            "  {label}: p4 {:6.3}s   NCS_MTS/p4 {:6.3}s   improvement {:4.1}%",
            p4.elapsed.as_secs_f64(),
            ncs.elapsed.as_secs_f64(),
            (p4.elapsed.as_secs_f64() - ncs.elapsed.as_secs_f64()) / p4.elapsed.as_secs_f64()
                * 100.0
        );
    }
    println!("\n(every spectrum is checked against the sequential FFT; the NCS");
    println!(" variant's final exchange step is local between sibling threads)");
}
