//! The JPEG compression/decompression pipeline (paper Section 5.2): half
//! the nodes compress bands of a synthetic ~600 KB image, half decompress,
//! the host combines — showing the real codec at work (compression ratio,
//! PSNR) alongside the timing comparison.
//!
//! ```text
//! cargo run --release --example jpeg_pipeline -- [nodes]
//! ```

use ncs::apps::jpeg::{compress, decompress};
use ncs::apps::jpeg_dist::{jpeg_ncs, jpeg_p4, JpegConfig};
use ncs::apps::workloads::GrayImage;
use ncs::net::Testbed;
use ncs::sim::SimRng;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map_or(4, |s| s.parse().expect("nodes"));
    let cfg = JpegConfig::paper(nodes);

    // First, the codec itself on the same image.
    let mut rng = SimRng::new(cfg.seed);
    let img = GrayImage::synthetic(cfg.width, cfg.height, &mut rng);
    let compressed = compress(&img, cfg.quality);
    let restored = decompress(&compressed).expect("decompress");
    println!(
        "image {}x{} ({} KB) -> {} KB compressed ({:.1}:1), PSNR {:.1} dB\n",
        img.width,
        img.height,
        img.len() / 1024,
        compressed.len() / 1024,
        img.len() as f64 / compressed.len() as f64,
        restored.psnr(&img)
    );

    println!(
        "distributed pipeline, {nodes} nodes ({} compress, {} decompress):",
        nodes / 2,
        nodes / 2
    );
    for (label, testbed) in [
        ("Ethernet ", Testbed::SunEthernet),
        ("NYNET WAN", Testbed::NynetTcp),
    ] {
        let p4 = jpeg_p4(testbed.build(nodes + 1), cfg);
        let ncs = jpeg_ncs(testbed.build(nodes + 1), cfg);
        assert!(p4.verified && ncs.verified);
        println!(
            "  {label}: p4 {:7.3}s   NCS_MTS/p4 {:7.3}s   improvement {:4.1}%   ({} KB crossed the wire compressed)",
            p4.elapsed.as_secs_f64(),
            ncs.elapsed.as_secs_f64(),
            (p4.elapsed.as_secs_f64() - ncs.elapsed.as_secs_f64()) / p4.elapsed.as_secs_f64()
                * 100.0,
            ncs.compressed_bytes / 1024,
        );
    }
}
