//! NCS error control under fire: corruption and loss injected into the
//! transport, repaired by the checksum/NACK and timeout-retransmission
//! machinery selected at `NCS_init` — and the exception service reporting
//! a destination that is truly unreachable.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use bytes::Bytes;
use ncs::core::faulty::FaultyNet;
use ncs::core::{ErrorControl, NcsConfig, NcsWorld, RtoConfig, ThreadAddr, EXC_DELIVERY_FAILED};
use ncs::net::{Network, Testbed};
use ncs::sim::{Dur, Sim};
use std::sync::Arc;

fn main() {
    // Part 1: a rough wire — 15% corruption, 15% loss — fully repaired.
    let sim = Sim::new();
    let base = Testbed::SunAtmLanTcp.build(2);
    let faulty: Arc<FaultyNet> = Arc::new(FaultyNet::with_loss(base, 0.15, 0.15, 0xF001));
    let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(150)),
        ..NcsConfig::default()
    };
    const MSGS: u32 = 40;
    let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..MSGS {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 2048]));
                }
            } else {
                for i in 0..MSGS {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert!(m.data.iter().all(|&b| b == i as u8), "message {i} damaged");
                }
            }
        });
    });
    let out = sim.run();
    out.assert_clean();
    println!(
        "rough wire: {MSGS} x 2 KB delivered intact in {}",
        out.end_time
    );
    println!(
        "  injected: {} corrupted, {} dropped; repaired with {} retransmissions",
        faulty.corrupted_count(),
        faulty.dropped_count(),
        world.procs()[0].retransmits(),
    );

    // Part 2: a dead wire — every frame lost. Error control gives up after
    // its retry budget and raises a local exception instead of hanging.
    let sim = Sim::new();
    let base = Testbed::SunAtmLanTcp.build(2);
    let dead: Arc<dyn Network> = Arc::new(FaultyNet::with_loss(base, 0.0, 1.0, 0xF002));
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(100)),
        max_retries: 4,
        ..NcsConfig::default()
    };
    let world = NcsWorld::launch(&sim, vec![dead], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.on_exception(|e| {
                println!(
                    "  exception handler: code {:#X} toward {} (delivery failed)",
                    e.code, e.from
                );
                assert_eq!(e.code, EXC_DELIVERY_FAILED);
            });
            proc_.t_create("sender", 5, |ncs| {
                ncs.send(
                    ThreadAddr::new(1, 0),
                    7,
                    Bytes::from_static(b"anyone there?"),
                );
            });
        }
    });
    let out = sim.run();
    assert!(out.panics.is_empty());
    println!(
        "\ndead wire: sender gave up after {} retries at {} and raised locally",
        4, out.end_time
    );
    let _ = world;
    sim.finish();
}
