//! Figure 5 as running code: two applications with different QOS needs on
//! the same NCS — a Video-on-Demand stream that wants bounded buffering
//! (credit flow control, CBR-ish pacing) next to a bulk parallel transfer
//! that wants throughput — plus per-frame deadline accounting for the VOD
//! consumer.
//!
//! ```text
//! cargo run --release --example vod_stream
//! ```

use bytes::Bytes;
use ncs::core::{FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs::net::Testbed;
use ncs::sim::{Dur, Sim, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

const FRAMES: u32 = 48;
const FRAME_BYTES: usize = 16 * 1024; // a compressed PAL-ish frame
const FRAME_PERIOD: Dur = Dur::from_millis(40); // 25 fps

fn main() {
    let sim = Sim::new();
    let net = Testbed::SunAtmLanApi.build(2); // High Speed Mode tier
    println!("transport: {}\n", net.description());

    // Credit flow control keeps the set-top side's buffering bounded.
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 8 },
        ..NcsConfig::default()
    };

    let stats: Arc<Mutex<(u32, u32, Dur)>> = Arc::new(Mutex::new((0, 0, Dur::ZERO)));
    let st2 = Arc::clone(&stats);

    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        if id == 0 {
            // The video server: paced frame producer (the "S" thread of
            // Figure 5's VOD application).
            proc_.t_create("vod-server", 4, |ncs| {
                for i in 0..FRAMES {
                    // Absolute-time CBR pacing: frame i goes out at i·T
                    // regardless of how long the previous send blocked.
                    let target = SimTime::ZERO + FRAME_PERIOD.times(u64::from(i) + 1);
                    let now = ncs.ctx().now();
                    if target > now {
                        ncs.mctx().sleep(target.since(now));
                    }
                    ncs.send(
                        ThreadAddr::new(1, 0),
                        i,
                        Bytes::from(vec![0u8; FRAME_BYTES]),
                    );
                }
            });
            // A bulk transfer sharing the same process and wire (the
            // "P/D Appln" of Figure 5).
            proc_.t_create("bulk-sender", 6, |ncs| {
                ncs.send(
                    ThreadAddr::new(1, 1),
                    1000,
                    Bytes::from(vec![1u8; 512 * 1024]),
                );
            });
        } else {
            let st = Arc::clone(&st2);
            proc_.t_create("vod-player", 4, move |ncs| {
                let mut worst = Dur::ZERO;
                let (mut on_time, mut late) = (0u32, 0u32);
                for i in 0..FRAMES {
                    let deadline =
                        SimTime::ZERO + FRAME_PERIOD.times(u64::from(i) + 1) + Dur::from_millis(80);
                    let m = ncs.recv(Some(0), Some(0), Some(i));
                    assert_eq!(m.data.len(), FRAME_BYTES);
                    let now = ncs.ctx().now();
                    if now <= deadline {
                        on_time += 1;
                    } else {
                        late += 1;
                        worst = worst.max(now.since(deadline));
                    }
                    // Decode cost.
                    ncs.compute(200_000, "decode");
                }
                *st.lock() = (on_time, late, worst);
            });
            proc_.t_create("bulk-receiver", 6, |ncs| {
                let m = ncs.recv(Some(0), Some(1), Some(1000));
                assert_eq!(m.data.len(), 512 * 1024);
            });
        }
    });

    let out = sim.run();
    out.assert_clean();
    let (on_time, late, worst) = *stats.lock();
    println!(
        "VOD stream: {FRAMES} frames @ 25 fps, {} KB/frame",
        FRAME_BYTES / 1024
    );
    println!("  on time: {on_time}   late: {late}   worst lateness: {worst}");
    println!(
        "  peak frames buffered at the player: {} (credit window keeps it bounded)",
        world.procs()[1].peak_buffered()
    );
    println!("bulk transfer: 512 KB moved alongside the stream");
    println!("(the few late frames cluster where the bulk transfer monopolizes");
    println!(" the send thread — the jitter QOS-aware scheduling would target)");
    assert!(late <= FRAMES / 6, "too many late frames: {late}");
}
