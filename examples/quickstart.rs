//! Quickstart: the NCS programming model in one file.
//!
//! Builds a simulated FORE ATM LAN, launches two NCS processes following
//! the paper's generic application model (Figure 10: `NCS_init`,
//! `NCS_t_create`, `NCS_start`), and demonstrates the headline property:
//! a receive blocks only the calling thread, so a sibling thread computes
//! through the communication delay.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use ncs::core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs::net::Testbed;
use ncs::sim::Sim;

fn main() {
    // A 2-host SPARCstation-IPX ATM LAN with TCP (the paper's NSM tier).
    let sim = Sim::new();
    let net = Testbed::SunAtmLanTcp.build(2);
    println!("testbed: {}", net.description());

    NcsWorld::launch(&sim, vec![net], 2, NcsConfig::default(), |id, proc_| {
        if id == 0 {
            // Process 0: a single thread that thinks, then sends.
            proc_.t_create("sender", 5, |ncs| {
                println!("[{}] p0 computing before send…", ncs.ctx().now());
                ncs.compute(40_000_000, "think"); // 1 s on a 40 MHz IPX
                println!("[{}] p0 sending 64 KB", ncs.ctx().now());
                ncs.send(ThreadAddr::new(1, 0), 7, Bytes::from(vec![42u8; 64 * 1024]));
                println!("[{}] p0 send returned", ncs.ctx().now());
            });
        } else {
            // Process 1: one thread waits for the message…
            proc_.t_create("receiver", 5, |ncs| {
                let m = ncs.recv(Some(0), None, Some(7));
                println!(
                    "[{}] p1.t0 received {} bytes from {} (tag {})",
                    ncs.ctx().now(),
                    m.data.len(),
                    m.from,
                    m.tag
                );
                assert!(m.data.iter().all(|&b| b == 42));
            });
            // …while a sibling thread computes through the wait: this is
            // the overlap the whole paper is about.
            proc_.t_create("worker", 6, |ncs| {
                ncs.compute(20_000_000, "useful-work"); // 0.5 s
                println!(
                    "[{}] p1.t1 finished its computation (did not wait for the message)",
                    ncs.ctx().now()
                );
            });
        }
    });

    let out = sim.run();
    out.assert_clean();
    println!(
        "\nsimulation complete at {} ({} events)",
        out.end_time, out.events
    );
}
