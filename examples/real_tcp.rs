//! NCS over real TCP sockets — the non-simulated runtime.
//!
//! Spawns a 3-process mesh on loopback (each "process" an OS thread here;
//! point the address list at other machines for a LAN deployment), then
//! runs a tagged scatter/compute/gather with a barrier — the same
//! programming model as the simulated paper experiments, for real.
//!
//! ```text
//! cargo run --release --example real_tcp
//! ```

use ncs::core::real::RealNcs;
use ncs::core::ThreadAddr;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        })
        .collect()
}

fn worker(id: usize, addrs: Vec<SocketAddr>) {
    let ncs = RealNcs::connect_timeout(id, &addrs, Duration::from_secs(10)).unwrap();
    let n = ncs.num_procs();
    if id == 0 {
        // Scatter one chunk per worker.
        let data: Vec<u64> = (0..3000).collect();
        let chunk = data.len() / (n - 1);
        for w in 1..n {
            let lo = (w - 1) * chunk;
            let bytes: Vec<u8> = data[lo..lo + chunk]
                .iter()
                .flat_map(|x| x.to_le_bytes())
                .collect();
            ncs.send(0, ThreadAddr::new(w, 0), 1, &bytes).unwrap();
        }
        // Gather partial sums.
        let mut total = 0u64;
        for _ in 1..n {
            let m = ncs.recv(None, None, Some(2)).unwrap();
            total += u64::from_le_bytes(m.data[..8].try_into().unwrap());
        }
        let expect: u64 = data.iter().sum();
        assert_eq!(total, expect);
        println!("rank 0: distributed sum = {total} (verified)");
    } else {
        let m = ncs.recv(Some(0), None, Some(1)).unwrap();
        let sum: u64 = m
            .data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .sum();
        println!("rank {id}: partial sum {sum}");
        ncs.send(0, ThreadAddr::new(0, 0), 2, &sum.to_le_bytes())
            .unwrap();
    }
    ncs.barrier().unwrap();
    ncs.shutdown();
}

fn main() {
    // This example runs over REAL TCP sockets between real OS threads —
    // the one demo that is *supposed* to touch the host clock and spawn
    // OS threads (it drives the `ncs::core::real` runtime, not the
    // simulator).
    // ncs-lint: allow(wall-clock)
    let t0 = Instant::now();
    let addrs = free_addrs(3);
    let handles: Vec<_> = (0..3)
        .map(|id| {
            let addrs = addrs.clone();
            // ncs-lint: allow(thread-spawn)
            std::thread::spawn(move || worker(id, addrs))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "mesh of 3 real TCP processes completed in {:?}",
        t0.elapsed()
    );
}
